(* Hdl.Equiv tests: SAT-sweep correctness (duplicates, complements,
   proven constants), merge barriers (ports / registers / metadata
   signals survive), the qcheck differential asserting swept and
   unswept netlists agree on every original signal over a 24-cycle
   random simulation, semantic-digest invariance under sweeping and
   module renaming, and the memoized structural digest. *)

module N = Hdl.Netlist
module E = Hdl.Equiv

let bv w i = Bitvec.of_int ~width:w i

(* A small design with guaranteed redundancy: two copies of [a & b],
   a complementary pair around [a == b], and an [x ^ x] constant. *)
let redundant_netlist () =
  let nl = N.create "redundant" in
  let a = N.input nl "a" 4 in
  let b = N.input nl "b" 4 in
  let dup1 = N.op2 nl N.And a b in
  let dup2 = N.op2 nl N.And a b in
  let eq1 = N.op2 nl N.Eq a b in
  let eq2 = N.op2 nl N.Eq a b in
  let neq = N.not_ nl eq2 in
  let zero = N.op2 nl N.Xor a a in
  let r = N.reg nl ~name:"r" ~init:(N.Init_value (bv 4 0)) ~width:4 () in
  let sum = N.op2 nl N.Add dup1 zero in
  N.connect_reg nl r sum;
  let out = N.op2 nl N.Or dup2 r in
  N.set_name nl out "out";
  let flag = N.op2 nl N.Or eq1 neq in
  N.set_name nl flag "flag";
  (nl, dup1, dup2, eq1, neq, zero)

let test_sweep_merges_duplicates () =
  let nl, dup1, dup2, _eq1, _neq, zero = redundant_netlist () in
  let _red, image, stats = E.reduce nl in
  Alcotest.(check bool) "dup2 merged onto dup1" true (image.(dup2) = image.(dup1));
  Alcotest.(check bool) "some complement merge" true (stats.E.complement_merged >= 1);
  Alcotest.(check bool) "xor-with-self proven constant" true
    (stats.E.const_merged >= 1);
  Alcotest.(check bool) "zero merged" true (image.(zero) >= 0);
  Alcotest.(check bool) "at least three merges" true (stats.E.merged >= 3);
  Alcotest.(check bool) "no veto on acyclic design" true (stats.E.vetoed = 0)

let test_sweep_proven_constant_is_const_node () =
  let nl, _, _, _, _, zero = redundant_netlist () in
  let red, image, _ = E.reduce nl in
  match (N.node red image.(zero)).N.kind with
  | N.Const v -> Alcotest.(check bool) "constant value 0" true (Bitvec.is_zero v)
  | _ -> Alcotest.fail "x^x did not land on a Const node"

let test_analyze_classes () =
  let nl, dup1, dup2, eq1, neq, _zero = redundant_netlist () in
  let classes, stats = E.analyze nl in
  let find_class_of s =
    List.find_opt
      (fun c -> c.E.rep = s || List.exists (fun (m, _) -> m = s) c.E.members)
      classes
  in
  (match find_class_of dup2 with
  | Some c -> Alcotest.(check int) "dup class rep is lowest id" dup1 c.E.rep
  | None -> Alcotest.fail "no class for duplicate");
  (match find_class_of neq with
  | Some c ->
    let ph =
      if c.E.rep = eq1 then
        List.exists (fun (m, ph) -> m = neq && ph) c.E.members
      else false
    in
    Alcotest.(check bool) "neq is complement of eq1" true ph
  | None -> Alcotest.fail "no class for complement pair");
  Alcotest.(check bool) "queries issued" true (stats.E.sat_queries > 0)

(* --- merge barriers ----------------------------------------------------- *)

let test_barriers_survive () =
  let nl, _, _, _, _, _ = redundant_netlist () in
  let red, image, _ = E.reduce nl in
  (* Inputs, registers and named nodes all survive under their names. *)
  List.iter
    (fun nm ->
      match N.find_named red nm with
      | Some s ->
        let orig = Option.get (N.find_named nl nm) in
        Alcotest.(check int) (nm ^ " image points at the named survivor") s
          image.(orig)
      | None -> Alcotest.fail ("named signal lost: " ^ nm))
    [ "a"; "b"; "r"; "out"; "flag" ];
  Alcotest.(check int) "register count preserved"
    (List.length (N.registers nl))
    (List.length (N.registers red));
  Alcotest.(check int) "input count preserved"
    (List.length (N.inputs nl))
    (List.length (N.inputs red))

let test_explicit_barrier_not_merged () =
  (* Two unnamed duplicates; passing one as an explicit (metadata-style)
     barrier must keep it as its own node. *)
  let nl = N.create "bar" in
  let a = N.input nl "a" 4 in
  let b = N.input nl "b" 4 in
  let dup1 = N.op2 nl N.And a b in
  let dup2 = N.op2 nl N.And a b in
  let out = N.op2 nl N.Or dup1 dup2 in
  N.set_name nl out "out";
  let red, image, stats = E.reduce ~barriers:[ dup2 ] nl in
  Alcotest.(check bool) "barrier kept distinct" true (image.(dup2) <> image.(dup1));
  Alcotest.(check int) "no merges" 0 stats.E.merged;
  ignore red

let test_metadata_signals_are_barriers () =
  (* On a full generated design, no metadata-referenced signal may be
     rewritten away: its image must be a node of the same kind (register
     stays a register, input stays an input). *)
  let cfg = Fuzz.Gen.config_for ~seed:3 0 in
  let meta = Fuzz.Gen.build cfg in
  let nl = meta.Designs.Meta.nl in
  let barriers = Designs.Meta.signals meta in
  let red, image, _ = E.reduce ~barriers nl in
  List.iter
    (fun s ->
      let same_shape =
        match ((N.node nl s).N.kind, (N.node red image.(s)).N.kind) with
        | N.Input, N.Input | N.Reg _, N.Reg _ -> true
        | N.Reg _, _ | N.Input, _ -> false
        | _, _ -> true (* combinational: survives as itself, checked below *)
      in
      Alcotest.(check bool)
        (Printf.sprintf "meta signal %d keeps its shape" s)
        true same_shape;
      match (N.node nl s).N.name with
      | Some nm ->
        Alcotest.(check bool)
          (Printf.sprintf "meta signal %s survives by name" nm)
          true
          (N.find_named red nm = Some image.(s))
      | None -> ())
    barriers

(* --- qcheck differential: swept == unswept over 24 cycles ---------------- *)

let sim_equal_after_sweep nl ~barriers ~seed ~cycles =
  let red, image, _stats = E.reduce ~barriers nl in
  let s0 = Sim.create ~seed nl in
  let s1 = Sim.create ~seed red in
  let ok = ref true in
  for _ = 1 to cycles do
    Sim.poke_random_inputs s0;
    Sim.poke_random_inputs s1;
    Sim.eval s0;
    Sim.eval s1;
    for id = 0 to N.num_nodes nl - 1 do
      if not (Bitvec.equal (Sim.peek s0 id) (Sim.peek s1 image.(id))) then
        ok := false
    done;
    Sim.step s0;
    Sim.step s1
  done;
  !ok

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let qcheck_sweep_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:8
       ~name:"sweep preserves 24-cycle simulation (Fuzz.Gen pipelines)"
       arb_seed
       (fun seed ->
         let cfg = Fuzz.Gen.config_for ~seed 0 in
         let meta = Fuzz.Gen.build cfg in
         sim_equal_after_sweep meta.Designs.Meta.nl
           ~barriers:(Designs.Meta.signals meta) ~seed ~cycles:24))

let test_sweep_differential_builtins () =
  List.iter
    (fun build ->
      let meta = build () in
      Alcotest.(check bool)
        (N.name meta.Designs.Meta.nl ^ ": swept sim equal")
        true
        (sim_equal_after_sweep meta.Designs.Meta.nl
           ~barriers:(Designs.Meta.signals meta) ~seed:11 ~cycles:24))
    [
      (fun () -> Designs.Core.build Designs.Core.baseline);
      (fun () -> Designs.Cache.build ());
    ]

(* --- semantic digest ----------------------------------------------------- *)

let test_semantic_digest_sweep_invariant () =
  let meta = Designs.Core.build Designs.Core.baseline in
  let nl = meta.Designs.Meta.nl in
  let red, _, _ = E.reduce ~barriers:(Designs.Meta.signals meta) nl in
  Alcotest.(check string) "semantic digest survives sweeping"
    (E.semantic_digest nl) (E.semantic_digest red);
  Alcotest.(check bool) "structural digests differ" true
    (N.digest nl <> N.digest red)

let test_semantic_digest_module_name_independent () =
  let build name =
    let nl = N.create name in
    let a = N.input nl "a" 8 in
    let r = N.reg nl ~name:"r" ~init:N.Init_symbolic ~width:8 () in
    N.connect_reg nl r (N.op2 nl N.Add a r);
    let out = N.op2 nl N.Xor r a in
    N.set_name nl out "out";
    nl
  in
  Alcotest.(check string) "module name does not affect semantic digest"
    (E.semantic_digest (build "alpha"))
    (E.semantic_digest (build "beta"));
  (* ...but behavior does. *)
  let other = N.create "gamma" in
  let a = N.input other "a" 8 in
  let r = N.reg other ~name:"r" ~init:N.Init_symbolic ~width:8 () in
  N.connect_reg other r (N.op2 other N.Sub a r);
  let out = N.op2 other N.Xor r a in
  N.set_name other out "out";
  Alcotest.(check bool) "different behavior, different digest" true
    (E.semantic_digest (build "alpha") <> E.semantic_digest other)

(* --- memoized structural digest ------------------------------------------ *)

let test_digest_memoized () =
  (* Correctness: memoization is invisible (mutations invalidate). *)
  let nl = N.create "memo" in
  let a = N.input nl "a" 8 in
  let d0 = N.digest nl in
  Alcotest.(check string) "repeat call stable" d0 (N.digest nl);
  let x = N.op2 nl N.Add a a in
  let d1 = N.digest nl in
  Alcotest.(check bool) "add invalidates" true (d0 <> d1);
  N.set_name nl x "x";
  let d2 = N.digest nl in
  Alcotest.(check bool) "set_name invalidates" true (d1 <> d2);
  let r = N.reg nl ~name:"r" ~init:N.Init_symbolic ~width:8 () in
  let d3 = N.digest nl in
  N.connect_reg nl r x;
  let d4 = N.digest nl in
  Alcotest.(check bool) "connect_reg invalidates" true (d3 <> d4);
  (* O(1) after the first call: tens of thousands of repeat calls on a
     netlist with thousands of nodes must be far cheaper than even two
     full recomputations' worth of work. *)
  let big = N.create "big" in
  let i0 = N.input big "i0" 32 in
  let acc = ref i0 in
  for _ = 1 to 4000 do
    acc := N.op2 big N.Add !acc i0
  done;
  N.set_name big !acc "out";
  let t0 = Unix.gettimeofday () in
  let first = N.digest big in
  let t_first = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to 50_000 do
    ignore (N.digest big)
  done;
  let t_rest = Unix.gettimeofday () -. t1 in
  Alcotest.(check string) "same digest" first (N.digest big);
  (* 50k cached calls should cost well under 50000x one recomputation;
     allow a factor-100 margin over two recomputations for timer noise. *)
  Alcotest.(check bool)
    (Printf.sprintf "memoized digest is O(1): first=%.6fs rest(50k)=%.6fs"
       t_first t_rest)
    true
    (t_rest < (t_first *. 100.) +. 0.5)

let suite =
  ( "equiv",
    [
      Alcotest.test_case "sweep merges duplicates" `Quick
        test_sweep_merges_duplicates;
      Alcotest.test_case "proven constant becomes Const" `Quick
        test_sweep_proven_constant_is_const_node;
      Alcotest.test_case "analyze classes" `Quick test_analyze_classes;
      Alcotest.test_case "barriers survive" `Quick test_barriers_survive;
      Alcotest.test_case "explicit barrier not merged" `Quick
        test_explicit_barrier_not_merged;
      Alcotest.test_case "metadata signals are barriers" `Quick
        test_metadata_signals_are_barriers;
      qcheck_sweep_differential;
      Alcotest.test_case "sweep differential on built-ins" `Quick
        test_sweep_differential_builtins;
      Alcotest.test_case "semantic digest sweep-invariant" `Quick
        test_semantic_digest_sweep_invariant;
      Alcotest.test_case "semantic digest module-name independent" `Quick
        test_semantic_digest_module_name_independent;
      Alcotest.test_case "digest memoized" `Quick test_digest_memoized;
    ] )
