(* Parallel-execution determinism: the engine's domain fan-out must be
   invisible in the output.  [Engine.run ~jobs:4] on the Ibex design has to
   produce the same signatures and the same report (µPATH sets, decisions,
   property outcome counts) as the sequential run — the per-task seed
   derivation exists precisely for this.  Also: property sharding on the
   toy DUV finds the same µPATH set as the single-checker run. *)

module Engine = Synthlc.Engine

let light_config =
  {
    Mc.Checker.default_config with
    Mc.Checker.bmc_depth = 8;
    bmc_conflicts = 30_000;
    induction_max_k = 2;
    sim_episodes = 8;
    sim_cycles = 36;
  }

let run_ibex_engine jobs =
  let design () = Designs.Ibex.build () in
  let stimulus ~pins ~rotate meta = Designs.Stimulus.ibex ~pins ~rotate meta in
  Engine.run ~config:light_config ~synth_config:light_config ~stimulus ~design
    ~jobs
    ~instructions:
      [ Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD; Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.DIV ]
    ~transmitters:[ Isa.DIV; Isa.ADD ]
    ~kinds:[ Synthlc.Types.Intrinsic ]
    ~revisit_count_labels:[ "divU" ] ~iuv_pc:Designs.Core.iuv_pc ()

let test_engine_jobs_deterministic () =
  let seq = run_ibex_engine 1 in
  let par = run_ibex_engine 4 in
  Alcotest.(check int) "jobs recorded" 4 par.Engine.jobs;
  Alcotest.(check bool) "report equal to sequential" true
    (Engine.equal_report seq par);
  let sig_names r =
    List.map Synthlc.Types.signature_name (Engine.all_signatures r)
  in
  Alcotest.(check (list string)) "same signatures" (sig_names seq) (sig_names par);
  List.iter2
    (fun (a : Engine.transponder_report) (b : Engine.transponder_report) ->
      Alcotest.(check int) "same uPATH count"
        (List.length a.Engine.synth.Mupath.Synth.paths)
        (List.length b.Engine.synth.Mupath.Synth.paths))
    seq.Engine.transponders par.Engine.transponders

let paths_of (r : Mupath.Synth.result) =
  List.map
    (fun (p : Mupath.Synth.path) -> (p.Mupath.Synth.pl_set, p.Mupath.Synth.hb_edges))
    r.Mupath.Synth.paths

let test_synth_shards_on_toy () =
  let run shards =
    Mupath.Synth.run ~config:Test_mupath.toy_config ~shards
      ~meta:(Test_mupath.toy_design ()) ~iuv:(Isa.make Isa.ADD) ~iuv_pc:2 ()
  in
  let plain = run 1 in
  let sharded = run 2 in
  Alcotest.(check int) "same uPATH count"
    (List.length plain.Mupath.Synth.paths)
    (List.length sharded.Mupath.Synth.paths);
  Alcotest.(check bool) "same uPATH sets" true
    (paths_of plain = paths_of sharded);
  Alcotest.(check (list string)) "same IUV PLs" plain.Mupath.Synth.iuv_pls
    sharded.Mupath.Synth.iuv_pls;
  (* Shard checkers merge into one stats record covering every property. *)
  Alcotest.(check bool) "merged stats cover all properties" true
    (sharded.Mupath.Synth.checker_stats.Mc.Checker.Stats.n_props
    >= plain.Mupath.Synth.checker_stats.Mc.Checker.Stats.n_props)

let test_stats_merge () =
  let a = Mc.Checker.Stats.create () and b = Mc.Checker.Stats.create () in
  a.Mc.Checker.Stats.n_props <- 3;
  a.Mc.Checker.Stats.n_reachable <- 2;
  a.Mc.Checker.Stats.total_time <- 1.5;
  b.Mc.Checker.Stats.n_props <- 4;
  b.Mc.Checker.Stats.n_undetermined <- 1;
  b.Mc.Checker.Stats.total_time <- 0.5;
  let m = Mc.Checker.Stats.merge a b in
  Alcotest.(check int) "props" 7 m.Mc.Checker.Stats.n_props;
  Alcotest.(check int) "reachable" 2 m.Mc.Checker.Stats.n_reachable;
  Alcotest.(check int) "undetermined" 1 m.Mc.Checker.Stats.n_undetermined;
  Alcotest.(check (float 1e-9)) "time" 2.0 m.Mc.Checker.Stats.total_time;
  (* merge must not alias its inputs *)
  m.Mc.Checker.Stats.n_props <- 99;
  Alcotest.(check int) "input a untouched" 3 a.Mc.Checker.Stats.n_props

let suite =
  ( "parallel",
    [
      Alcotest.test_case "stats merge" `Quick test_stats_merge;
      Alcotest.test_case "shards on toy DUV" `Quick test_synth_shards_on_toy;
      Alcotest.test_case "engine -j 4 deterministic (ibex)" `Slow
        test_engine_jobs_deterministic;
    ] )
