(* Model-checker tests on small hand-built designs where ground truth is
   obvious: BMC witnesses, k-induction proofs, bounded verdicts, assumption
   handling, literal-conjunction covers, and budget-driven undetermined
   outcomes. *)

module N = Hdl.Netlist
module C = Mc.Checker

(* An 8-bit counter that increments when [go] is high. *)
let counter_design () =
  let nl = N.create "counter" in
  let module D = Hdl.Dsl.Make (struct
    let nl = nl
  end) in
  let open D in
  let go = input "go" 1 in
  let count = reg ~name:"count" ~width:8 () in
  count <== mux go (count +: of_int 8 1) count;
  let at5 = wire ~name:"at5" 1 in
  at5 <== eq_const count 5;
  let at200 = wire ~name:"at200" 1 in
  at200 <== eq_const count 200;
  let odd = wire ~name:"odd" 1 in
  odd <== bit count 0;
  (nl, go, at5, at200, odd)

let quick_config =
  { C.default_config with C.bmc_depth = 10; sim_episodes = 4; sim_cycles = 12 }

let test_reachable_with_witness () =
  let nl, _, at5, _, _ = counter_design () in
  let chk = C.create ~config:quick_config ~assumes:[] nl in
  match C.check_cover chk [ (at5, true) ] with
  | C.Reachable cex ->
    (* count reaches 5 no earlier than cycle 5 *)
    let len = C.Cex.length cex in
    Alcotest.(check bool) "witness length sane" true (len >= 6 && len <= 13);
    Alcotest.(check int) "count value at end" 5
      (Bitvec.to_int (C.Cex.value_exn cex "count" ~cycle:(len - 1)))
  | o -> Alcotest.failf "expected reachable, got %s" (C.outcome_tag o)

let test_bounded_unreachable () =
  let nl, _, _, at200, _ = counter_design () in
  (* 200 needs 200 cycles; depth 10 cannot reach it, induction cannot prove
     it (the counter state space admits long simple paths), so we get a
     bounded verdict. *)
  let chk =
    C.create
      ~config:{ quick_config with C.induction_max_k = 1; sim_episodes = 2 }
      ~assumes:[] nl
  in
  (match C.check_cover chk [ (at200, true) ] with
  | C.Unreachable (C.Bounded d) -> Alcotest.(check int) "depth" 10 d
  | o -> Alcotest.failf "expected bounded-unreachable, got %s" (C.outcome_tag o))

let test_inductive_unreachable () =
  (* A 1-bit register stuck at 0: "reg = 1" is inductively unreachable. *)
  let nl = N.create "stuck" in
  let module D = Hdl.Dsl.Make (struct
    let nl = nl
  end) in
  let open D in
  let r = reg ~name:"r" ~width:1 () in
  r <== (r &: r);
  let bad = wire ~name:"bad" 1 in
  bad <== r;
  let chk = C.create ~config:quick_config ~assumes:[] nl in
  match C.check_cover chk [ (bad, true) ] with
  | C.Unreachable (C.Inductive k) -> Alcotest.(check bool) "small k" true (k <= 1)
  | o -> Alcotest.failf "expected inductive, got %s" (C.outcome_tag o)

let test_assumes_constrain () =
  let nl, go, at5, _, _ = counter_design () in
  (* Assume go is always low: the counter never moves. *)
  let module D = Hdl.Dsl.Make (struct
    let nl = nl
  end) in
  let open D in
  let no_go = wire ~name:"no_go" 1 in
  no_go <== ~:go;
  let chk = C.create ~config:quick_config ~assumes:[ no_go ] nl in
  (match C.check_cover chk [ (at5, true) ] with
  | C.Unreachable _ -> ()
  | o -> Alcotest.failf "expected unreachable under assumption, got %s" (C.outcome_tag o))

let test_conjunction_and_negation () =
  let nl, _, at5, _, odd = counter_design () in
  let chk = C.create ~config:quick_config ~assumes:[] nl in
  (* count = 5 and odd: consistent. *)
  (match C.check_cover chk [ (at5, true); (odd, true) ] with
  | C.Reachable _ -> ()
  | o -> Alcotest.failf "expected reachable, got %s" (C.outcome_tag o));
  (* count = 5 and not odd: contradictory. *)
  match C.check_cover chk [ (at5, true); (odd, false) ] with
  | C.Unreachable _ -> ()
  | o -> Alcotest.failf "expected unreachable, got %s" (C.outcome_tag o)

let test_stats_accumulate () =
  let nl, _, at5, _, odd = counter_design () in
  let chk = C.create ~config:quick_config ~assumes:[] nl in
  ignore (C.check_cover chk [ (at5, true) ]);
  ignore (C.check_cover chk [ (odd, true) ]);
  let s = C.stats chk in
  Alcotest.(check int) "two props" 2 s.C.Stats.n_props;
  Alcotest.(check int) "both reachable" 2 s.C.Stats.n_reachable;
  Alcotest.(check bool) "time recorded" true (s.C.Stats.total_time >= 0.)

let test_symbolic_init_reachability () =
  (* A symbolically initialized register makes "r = 0xAB" reachable at cycle
     0 even though no transition produces it. *)
  let nl = N.create "sym" in
  let module D = Hdl.Dsl.Make (struct
    let nl = nl
  end) in
  let open D in
  let r = reg_symbolic ~name:"r" ~width:8 () in
  r <== zero 8;
  let hit = wire ~name:"hit" 1 in
  hit <== eq_const r 0xAB;
  let chk =
    C.create ~config:{ quick_config with C.sim_episodes = 0 } ~assumes:[] nl
  in
  match C.check_cover chk [ (hit, true) ] with
  | C.Reachable cex ->
    Alcotest.(check int) "witness at cycle 0" 1 (C.Cex.length cex)
  | o -> Alcotest.failf "expected reachable, got %s" (C.outcome_tag o)

let test_portfolio_witness_identical () =
  (* The BMC witness — not just the verdict — must be bit-identical with
     the portfolio on: the canonical solver produces the model either way. *)
  let run domains =
    let nl, _, at5, _, _ = counter_design () in
    let chk =
      C.create
        ~config:
          { quick_config with C.sim_episodes = 0; portfolio_domains = domains }
        ~assumes:[] nl
    in
    match C.check_cover chk [ (at5, true) ] with
    | C.Reachable cex ->
      List.init (C.Cex.length cex) (fun c ->
          Bitvec.to_int (C.Cex.value_exn cex "count" ~cycle:c))
    | o -> Alcotest.failf "expected reachable, got %s" (C.outcome_tag o)
  in
  Alcotest.(check (list int)) "witnesses identical" (run 1) (run 3)

let suite =
  ( "mc",
    [
      Alcotest.test_case "reachable with witness" `Quick test_reachable_with_witness;
      Alcotest.test_case "bounded unreachable" `Quick test_bounded_unreachable;
      Alcotest.test_case "inductive unreachable" `Quick test_inductive_unreachable;
      Alcotest.test_case "assumptions constrain" `Quick test_assumes_constrain;
      Alcotest.test_case "conjunction and negation" `Quick test_conjunction_and_negation;
      Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
      Alcotest.test_case "symbolic initial state" `Quick test_symbolic_init_reachability;
      Alcotest.test_case "portfolio witness identical" `Quick
        test_portfolio_witness_identical;
    ] )
