(* SynthLC tests: signature assembly rules (footnote 3), the six Table I
   contract derivations on synthetic signatures, the Fig. 8 grid builder,
   symbolic IFT on the toy DUV (intrinsic transmitter detection), and the
   SC-Safe (Def. V.1) violation finder on the real core. *)

open Synthlc

let sig_input ?(kind = Types.Intrinsic) ?(op = Types.Rs1) tx =
  { Types.transmitter = tx; unsafe_operand = op; kind }

let mk_sig ?(inputs = [ sig_input Isa.DIV ]) ?(dsts = [ [ "a" ]; [ "b" ] ])
    transponder source =
  { Types.transponder; source; inputs; destinations = dsts }

let test_signature_naming () =
  let s = mk_sig Isa.LW "issue" in
  Alcotest.(check string) "name" "LW_issue" (Types.signature_name s);
  let rendered = Format.asprintf "%a" Types.pp_signature s in
  Alcotest.(check bool) "renders inputs" true (String.length rendered > 20)

let test_ct_contract () =
  let sigs =
    [
      mk_sig Isa.DIV "scbIss" ~inputs:[ sig_input Isa.DIV; sig_input ~op:Types.Rs2 Isa.DIV ];
      mk_sig Isa.ADD "ID" ~inputs:[ sig_input ~kind:Types.Dynamic_older Isa.LW ];
      (* duplicate unsafe operand across signatures must dedup *)
      mk_sig Isa.SUB "ID" ~inputs:[ sig_input ~kind:Types.Dynamic_older Isa.LW ];
    ]
  in
  let ct = Contracts.ct_of_signatures sigs in
  Alcotest.(check int) "deduped unsafe operands" 3 (List.length ct.Contracts.unsafe)

let test_stt_derivation () =
  let sigs =
    [
      (* explicit channel: DIV leaks its own operands *)
      mk_sig Isa.DIV "scbIss" ~inputs:[ sig_input Isa.DIV ];
      (* implicit channel: LW's path varies with an older SW's operand *)
      mk_sig Isa.LW "issue" ~inputs:[ sig_input ~kind:Types.Dynamic_older Isa.SW ];
      (* static-transmitter channel *)
      mk_sig Isa.LW "rdTag" ~inputs:[ sig_input ~kind:Types.Static Isa.LW ];
    ]
  in
  let stt = Contracts.stt_of_signatures sigs in
  Alcotest.(check int) "explicit channels" 1 (List.length stt.Contracts.stt_explicit_channels);
  Alcotest.(check int) "implicit channels" 2 (List.length stt.Contracts.stt_implicit_channels);
  Alcotest.(check int) "implicit branches" 1 (List.length stt.Contracts.stt_implicit_branches);
  Alcotest.(check int) "resolution-based" 1 (List.length stt.Contracts.stt_resolution_based);
  Alcotest.(check int) "prediction-based (static)" 1
    (List.length stt.Contracts.stt_prediction_based)

let test_mi6_and_dolma () =
  let sigs =
    [
      mk_sig Isa.LW "issue" ~inputs:[ sig_input ~kind:Types.Dynamic_older Isa.SW ];
      mk_sig Isa.LW "rdTag" ~inputs:[ sig_input ~kind:Types.Static Isa.LW ];
    ]
  in
  let mi6 = Contracts.mi6_of_signatures sigs in
  Alcotest.(check int) "mi6 dynamic" 1 (List.length mi6.Contracts.mi6_dynamic_channels);
  Alcotest.(check int) "mi6 static" 1 (List.length mi6.Contracts.mi6_static_channels);
  let dolma =
    Contracts.dolma_of ~signatures:sigs
      ~revisit_counts:[ (Isa.DIV, [ ("divU", [ 1; 2; 3 ]) ]) ]
      ~store_opcodes:[ Isa.SW; Isa.SB ]
  in
  Alcotest.(check (list string)) "variable time" [ "div" ]
    (List.map Isa.mnemonic dolma.Contracts.dolma_variable_time);
  Alcotest.(check int) "resolvent" 1 (List.length dolma.Contracts.dolma_resolvent);
  Alcotest.(check int) "inducive" 1 (List.length dolma.Contracts.dolma_inducive)

let test_oisa_sdo () =
  let sigs = [ mk_sig Isa.DIV "scbIss" ~inputs:[ sig_input Isa.DIV ] ] in
  let counts = [ (Isa.DIV, [ ("divU", [ 1; 4; 8 ]) ]); (Isa.ADD, [ ("ID", [ 1 ]) ]) ] in
  let oisa = Contracts.oisa_of ~signatures:sigs ~revisit_counts:counts in
  Alcotest.(check int) "oisa units" 1 (List.length oisa.Contracts.oisa_input_dependent_units);
  let sdo = Contracts.sdo_of ~signatures:sigs ~revisit_counts:counts in
  (match sdo.Contracts.sdo_variants with
  | [ (op, pl, ns) ] ->
    Alcotest.(check string) "sdo op" "div" (Isa.mnemonic op);
    Alcotest.(check string) "sdo pl" "divU" pl;
    Alcotest.(check (list int)) "sdo variants" [ 1; 4; 8 ] ns
  | _ -> Alcotest.fail "expected one sdo variant group");
  let bundle =
    Contracts.derive ~signatures:sigs ~revisit_counts:counts ~store_opcodes:[ Isa.SW ]
  in
  let rendered = Format.asprintf "%a" Contracts.pp_bundle bundle in
  Alcotest.(check bool) "bundle renders" true (String.length rendered > 50)

(* --- end-to-end symbolic IFT on the toy DUV -------------------------- *)

let test_flow_intrinsic_on_toy () =
  let design () = Test_mupath.toy_design () in
  (* First get the decisions via RTL2MuPATH. *)
  let r =
    Mupath.Synth.run ~config:Test_mupath.toy_config ~meta:(design ())
      ~iuv:(Isa.make Isa.ADD) ~iuv_pc:2 ()
  in
  let decisions =
    List.filter (fun (_, ds) -> List.length ds > 1) r.Mupath.Synth.decisions
  in
  Alcotest.(check bool) "toy has a decision" true (decisions <> []);
  (* Intrinsic rs1 taint: the A-decision is steered by bit 0 of the token's
     own operand, so it must be tagged. *)
  let a =
    Flow.analyze ~config:Test_mupath.toy_config ~design
      ~transponder:(Isa.make Isa.ADD) ~decisions ~transmitters:[ Isa.ADD ]
      ~kind:Types.Intrinsic ~operand:Types.Rs1 ~iuv_pc:2 ()
  in
  Alcotest.(check bool) "intrinsic rs1 tagged" true (List.length a.Flow.tagged >= 2);
  List.iter
    (fun (d : Types.tagged_decision) ->
      Alcotest.(check string) "src is A" "A" d.Types.src)
    a.Flow.tagged;
  (* Signature assembly: two tagged decisions at A yield one signature. *)
  let sigs =
    Engine.signatures_of_tagged (Isa.make Isa.ADD) r.Mupath.Synth.decisions
      a.Flow.tagged
  in
  Alcotest.(check int) "one signature" 1 (List.length sigs);
  Alcotest.(check string) "signature name" "ADD_A"
    (Types.signature_name (List.hd sigs))

let test_footnote3_requires_two () =
  (* A single tagged decision must NOT yield a signature. *)
  let tagged =
    [ { Types.src = "A"; dst = [ "B" ]; input = sig_input Isa.ADD } ]
  in
  let sigs =
    Engine.signatures_of_tagged (Isa.make Isa.ADD)
      [ ("A", [ [ "B" ]; [ "C" ] ]) ]
      tagged
  in
  Alcotest.(check int) "no signature from one tag" 0 (List.length sigs)

let test_grid () =
  let report =
    {
      Engine.instr = Isa.make Isa.LW;
      synth =
        (let meta = Test_mupath.toy_design () in
         Mupath.Synth.run ~config:Test_mupath.toy_config ~meta
           ~iuv:(Isa.make Isa.LW) ~iuv_pc:2 ());
      tagged =
        [
          { Types.src = "A"; dst = [ "B" ]; input = sig_input Isa.LW };
          { Types.src = "A"; dst = [ "C" ]; input = sig_input Isa.LW };
          (* stall-in-place: secondary *)
          { Types.src = "A"; dst = [ "A" ]; input = sig_input ~kind:Types.Dynamic_older Isa.SW };
        ];
      signatures =
        [
          mk_sig Isa.LW "A" ~inputs:[ sig_input Isa.LW ] ~dsts:[ [ "B" ]; [ "C" ] ];
        ];
      flow_props = 3;
      flow_undetermined = 0;
      flow_pruned_static = 0;
      flow_pruned_absint = 0;
      static_flow_live = [];
      flow_time = 0.1;
    }
  in
  let g = Grid.build [ report ] in
  Alcotest.(check int) "one column" 1 (List.length g.Grid.columns);
  Alcotest.(check bool) "rows for both transmitters" true (List.length g.Grid.rows >= 2);
  let col = List.hd g.Grid.columns in
  let prim_row =
    List.find (fun r -> r.Grid.row_transmitter = Isa.LW) g.Grid.rows
  in
  let sec_row = List.find (fun r -> r.Grid.row_transmitter = Isa.SW) g.Grid.rows in
  Alcotest.(check bool) "primary cell" true (Grid.cell_at g prim_row col = Grid.Primary);
  Alcotest.(check bool) "secondary cell" true (Grid.cell_at g sec_row col = Grid.Secondary);
  let rendered = Format.asprintf "%a" Grid.pp g in
  Alcotest.(check bool) "grid renders" true (String.length rendered > 40)

let test_scsafe_on_core () =
  (* The store-to-load channel violates Def. V.1 with the store's address
     secret... *)
  let program =
    match Isa.assemble "sw r3, 0(r1)\nsw r3, 0(r1)\nlw r3, 0(r2)" with
    | Ok p -> p
    | Error e -> failwith e
  in
  (match
     Scsafe.find_violation ~trials:16
       ~design:(fun () -> Designs.Core.build Designs.Core.baseline)
       ~program ~secret_reg:0 ()
   with
  | Some v -> Alcotest.(check bool) "diverges" true (v.Scsafe.vi_diverge_cycle >= 0)
  | None -> Alcotest.fail "expected an SC-Safe violation");
  (* ...whereas a pure ALU program over the secret is observation-equivalent
     (ALU ops are single-cycle and data-independent). *)
  let program =
    match Isa.assemble "add r2, r1, r1\nxor r2, r2, r1\nand r3, r2, r1" with
    | Ok p -> p
    | Error e -> failwith e
  in
  match
    Scsafe.find_violation ~trials:8
      ~design:(fun () -> Designs.Core.build Designs.Core.baseline)
      ~program ~secret_reg:0 ()
  with
  | None -> ()
  | Some _ -> Alcotest.fail "ALU-only program should be SC-Safe"

let suite =
  ( "synthlc",
    [
      Alcotest.test_case "signature naming" `Quick test_signature_naming;
      Alcotest.test_case "ct contract" `Quick test_ct_contract;
      Alcotest.test_case "stt derivation" `Quick test_stt_derivation;
      Alcotest.test_case "mi6 and dolma" `Quick test_mi6_and_dolma;
      Alcotest.test_case "oisa and sdo" `Quick test_oisa_sdo;
      Alcotest.test_case "flow intrinsic on toy" `Quick test_flow_intrinsic_on_toy;
      Alcotest.test_case "footnote 3" `Quick test_footnote3_requires_two;
      Alcotest.test_case "fig8 grid" `Quick test_grid;
      Alcotest.test_case "sc-safe on core" `Slow test_scsafe_on_core;
    ] )
