(* Domain work-pool tests: input-order preservation under contention,
   exception capture and re-raise at the join, jobs=1 vs jobs=N
   equivalence, nested-submission safety, map_reduce determinism, and the
   seed-derivation function. *)

exception Boom of int

let test_map_ordering () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 200 Fun.id in
      let ys = Pool.map p ~f:(fun x -> x * x) xs in
      Alcotest.(check (list int)) "squares in input order"
        (List.map (fun x -> x * x) xs)
        ys)

let test_mapi () =
  Pool.with_pool ~jobs:3 (fun p ->
      let ys = Pool.mapi p ~f:(fun i x -> (i, x)) [ "a"; "b"; "c"; "d" ] in
      Alcotest.(check (list (pair int string)))
        "indices line up"
        [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ]
        ys)

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun p ->
      match
        Pool.map p
          ~f:(fun x -> if x mod 7 = 3 then raise (Boom x) else x)
          (List.init 50 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
        (* Deterministic choice: the lowest-index failing task wins,
           matching what a sequential run raises first. *)
        Alcotest.(check int) "lowest failing index" 3 x);
  (* The pool survives a failed batch. *)
  Pool.with_pool ~jobs:4 (fun p ->
      (try ignore (Pool.map p ~f:(fun _ -> raise Exit) [ 1; 2; 3 ])
       with Exit -> ());
      Alcotest.(check (list int)) "pool usable after a raise" [ 2; 4 ]
        (Pool.map p ~f:(fun x -> 2 * x) [ 1; 2 ]))

let test_jobs1_vs_jobsN () =
  let f x = (x * 37) mod 101 in
  let xs = List.init 300 Fun.id in
  let seq = Pool.with_pool ~jobs:1 (fun p -> Pool.map p ~f xs) in
  let par = Pool.with_pool ~jobs:5 (fun p -> Pool.map p ~f xs) in
  Alcotest.(check (list int)) "jobs=1 equals jobs=5" seq par

let test_nested_map () =
  Pool.with_pool ~jobs:4 (fun p ->
      let ys =
        Pool.map p
          ~f:(fun x ->
            (* Submitting from inside a task must not deadlock the fixed
               pool; the inner map runs inline. *)
            let inner = Pool.map p ~f:(fun y -> x + y) [ 1; 2; 3 ] in
            List.fold_left ( + ) 0 inner)
          [ 10; 20; 30; 40; 50 ]
      in
      Alcotest.(check (list int)) "nested sums" [ 36; 66; 96; 126; 156 ] ys)

let test_map_reduce () =
  (* Non-commutative reduce: input-order folding keeps it deterministic. *)
  let xs = List.init 64 (fun i -> string_of_int i) in
  let cat =
    Pool.with_pool ~jobs:4 (fun p ->
        Pool.map_reduce p ~map:Fun.id ~reduce:( ^ ) ~init:"" xs)
  in
  Alcotest.(check string) "ordered concat" (String.concat "" xs) cat

let test_empty_and_singleton () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check (list int)) "empty" [] (Pool.map p ~f:Fun.id []);
      Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map p ~f:(fun x -> x) [ 9 ]))

let test_shutdown () =
  let p = Pool.create ~jobs:3 () in
  ignore (Pool.map p ~f:Fun.id [ 1; 2; 3 ]);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  match Pool.map p ~f:Fun.id [ 1; 2; 3; 4 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ()

let test_derive_seed () =
  let s0 = Pool.derive_seed ~base:1 ~index:0 in
  Alcotest.(check int) "pure function of (base, index)" s0
    (Pool.derive_seed ~base:1 ~index:0);
  Alcotest.(check bool) "non-negative" true (s0 >= 0);
  let seeds = List.init 64 (fun i -> Pool.derive_seed ~base:1 ~index:i) in
  Alcotest.(check int) "distinct across indices" 64
    (List.length (List.sort_uniq compare seeds));
  Alcotest.(check bool) "distinct across bases" true
    (Pool.derive_seed ~base:1 ~index:0 <> Pool.derive_seed ~base:2 ~index:0)

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one job" true (Pool.default_jobs () >= 1)

let suite =
  ( "pool",
    [
      Alcotest.test_case "map ordering" `Quick test_map_ordering;
      Alcotest.test_case "mapi" `Quick test_mapi;
      Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
      Alcotest.test_case "jobs=1 vs jobs=N" `Quick test_jobs1_vs_jobsN;
      Alcotest.test_case "nested map" `Quick test_nested_map;
      Alcotest.test_case "map_reduce" `Quick test_map_reduce;
      Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
      Alcotest.test_case "shutdown" `Quick test_shutdown;
      Alcotest.test_case "derive_seed" `Quick test_derive_seed;
      Alcotest.test_case "default_jobs" `Quick test_default_jobs_positive;
    ] )
