(* µLint tests: the built-in designs are clean, seeded defects trigger the
   documented diagnostic codes, JSON rendering and exit codes behave, the
   static reachability pre-pass prunes the CVA6 scoreboard's dead states,
   and synthesis produces a bit-identical report digest with the static
   prune on and off. *)

module N = Hdl.Netlist
module Meta = Designs.Meta
module D = Lint.Diagnostic

let bv w i = Bitvec.of_int ~width:w i

let build_design = function
  | "cva6_lite" -> Designs.Core.build Designs.Core.baseline
  | "cva6_mul" -> Designs.Core.build Designs.Core.cva6_mul
  | "cva6_op" -> Designs.Core.build Designs.Core.cva6_op
  | "cva6_fixed" -> Designs.Core.build Designs.Core.all_fixed
  | "ibex_lite" -> Designs.Ibex.build ()
  | "cva6_cache" -> Designs.Cache.build ()
  | d -> failwith ("unknown design " ^ d)

let all_designs =
  [ "cva6_lite"; "cva6_mul"; "cva6_op"; "cva6_fixed"; "ibex_lite"; "cva6_cache" ]

let test_builtin_designs_clean () =
  List.iter
    (fun dname ->
      let r = Lint.Driver.run_design (build_design dname) in
      let errors, warnings, _infos = D.counts r.D.diags in
      Alcotest.(check int) (dname ^ ": no errors") 0 errors;
      Alcotest.(check int) (dname ^ ": no warnings") 0 warnings)
    all_designs;
  let reports = List.map (fun d -> Lint.Driver.run_design (build_design d)) all_designs in
  Alcotest.(check int) "clean designs exit 0" 0 (D.exit_code reports)

(* A deliberately broken design exercising one finding per annotation code
   (plus the structural unnamed-annotated warning). *)
let broken_meta () =
  let nl = N.create "broken" in
  let ifr_valid = N.input nl "ifr_valid" 1 in
  (* L102: the IFR word must be Isa.width bits. *)
  let ifr_word = N.input nl "ifr_word" 8 in
  let commit = N.input nl "commit" 1 in
  let commit_pc = N.input nl "commit_pc" 6 in
  (* L006: an annotated signal without a name. *)
  let flush = N.not_ nl commit in
  let op_valid = N.input nl "op_valid" 1 in
  let op_pc = N.input nl "op_pc" 6 in
  let pcr = N.reg nl ~name:"pcr" ~init:(N.Init_value (Bitvec.zero 6)) ~width:6 () in
  N.connect_reg nl pcr pcr;
  (* L103: a µFSM state variable that is a wire, not a register. *)
  let svar = N.wire nl ~name:"state" 2 in
  N.connect_wire nl svar (N.const nl (bv 2 0));
  (* L105: an operand register that is an input. *)
  let opreg = N.input nl "rs1_val" 8 in
  {
    Meta.design_name = "broken";
    nl;
    ifrs =
      [
        (* L101: a PC annotation pointing outside the netlist. *)
        { Meta.ifr_valid; ifr_pc = 9999; ifr_word };
      ];
    operand_stage_valid = op_valid;
    operand_stage_pc = op_pc;
    commit;
    commit_pc;
    flush;
    ufsms =
      [
        {
          Meta.ufsm_name = "u";
          pcr;
          vars = [ svar ];
          (* L106: no idle state declared. *)
          idle_states = [];
          (* L104: the same valuation labelled twice. *)
          state_labels = [ (bv 2 1, "A"); (bv 2 1, "B") ];
        };
      ];
    operand_regs = [ ("rs1", opreg) ];
    arf = [];
    amem = [];
    extra_assumes = [];
  }

let test_seeded_defects () =
  let r = Lint.Driver.run_design (broken_meta ()) in
  let has code = List.exists (fun d -> d.D.code = code) r.D.diags in
  List.iter
    (fun code ->
      Alcotest.(check bool) ("finds " ^ code) true (has code))
    [ "L101"; "L102"; "L103"; "L104"; "L105"; "L106"; "L006" ];
  Alcotest.(check int) "errors exit 2" 2 (D.exit_code [ r ])

let test_structural_defects () =
  let meta = broken_meta () in
  let nl = meta.Meta.nl in
  (* L001: a combinational cycle. *)
  let loop = N.wire nl ~name:"loop" 1 in
  N.connect_wire nl loop (N.not_ nl loop);
  (* L002: an unconnected wire. *)
  let _dangling = N.wire nl ~name:"dangling" 4 in
  (* L004: dead logic reaching no register, named, or annotated signal. *)
  let dead = N.op2 nl N.Add meta.Meta.commit_pc meta.Meta.commit_pc in
  (* L005: foldable constant logic kept live through a named wire. *)
  let folded = N.wire nl ~name:"folded" 4 in
  N.connect_wire nl folded (N.op2 nl N.Add (N.const nl (bv 4 1)) (N.const nl (bv 4 2)));
  let diags = Lint.Structural.run meta in
  let find code = List.filter (fun d -> d.D.code = code) diags in
  Alcotest.(check bool) "L001 cycle" true
    (List.exists
       (fun d -> d.D.signal = Some loop)
       (find "L001"));
  Alcotest.(check bool) "L002 unconnected wire" true
    (List.exists (fun d -> d.D.signal_name = Some "dangling") (find "L002"));
  Alcotest.(check bool) "L004 dead operator" true
    (List.exists (fun d -> d.D.signal = Some dead) (find "L004"));
  Alcotest.(check bool) "L005 foldable" true (find "L005" <> []);
  (* Warnings alone exit 1: strip the broken annotations down to the
     structural warnings by checking severity classification instead. *)
  Alcotest.(check bool) "L004 is a warning" true
    (List.for_all (fun d -> d.D.severity = D.Warning) (find "L004"));
  Alcotest.(check bool) "L005 is an info" true
    (List.for_all (fun d -> d.D.severity = D.Info) (find "L005"))

let test_exit_codes_and_json () =
  (* Warning-only report exits 1; infos never affect the exit code. *)
  let warn = D.make ~code:"L004" ~severity:D.Warning "dead" in
  let info = D.make ~code:"L005" ~severity:D.Info "foldable" in
  Alcotest.(check int) "info only exits 0" 0
    (D.exit_code [ { D.design = "d"; diags = [ info ] } ]);
  Alcotest.(check int) "warning exits 1" 1
    (D.exit_code [ { D.design = "d"; diags = [ warn; info ] } ]);
  let r = Lint.Driver.run_design (broken_meta ()) in
  let json = D.to_json [ r ] in
  let contains sub =
    let rec go i =
      i + String.length sub <= String.length json
      && (String.sub json i (String.length sub) = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "json names the design" true (contains "\"broken\"");
  Alcotest.(check bool) "json carries codes" true (contains "\"L104\"");
  Alcotest.(check bool) "json counts errors" true (contains "\"errors\"")

(* A design seeding one finding per taint-flow code: a dead operand (T301),
   a blocker no taint reaches (T302), persistent state outside the cone
   (T303), an unconnected inject target (T304), an enabled register
   (T305). *)
let taint_broken_meta () =
  let nl = N.create "tbroken" in
  let ifr_valid = N.input nl "ifr_valid" 1 in
  let ifr_word = N.input nl "ifr_word" Isa.width in
  let ifr_pc = N.input nl "ifr_pc" 6 in
  let commit = N.input nl "commit" 1 in
  let commit_pc = N.input nl "commit_pc" 6 in
  let op_valid = N.input nl "op_valid" 1 in
  let op_pc = N.input nl "op_pc" 6 in
  let pcr = N.reg nl ~name:"pcr" ~init:(N.Init_value (Bitvec.zero 6)) ~width:6 () in
  N.connect_reg nl pcr pcr;
  let svar = N.reg nl ~name:"state" ~init:(N.Init_value (bv 2 0)) ~width:2 () in
  N.connect_reg nl svar svar;
  (* T301: a connected operand register that feeds nothing. *)
  let rs1 = N.reg nl ~name:"rs1_val" ~init:(N.Init_value (Bitvec.zero 8)) ~width:8 () in
  N.connect_reg nl rs1 (N.input nl "rs1_in" 8);
  (* T304: an operand register with no next-state. *)
  let rs2 = N.reg nl ~name:"rs2_val" ~init:(N.Init_value (Bitvec.zero 8)) ~width:8 () in
  (* T302: a blocked register only a constant drives. *)
  let arf0 = N.reg nl ~name:"arf0" ~init:(N.Init_value (Bitvec.zero 8)) ~width:8 () in
  N.connect_reg nl arf0 (N.const nl (Bitvec.zero 8));
  (* T303: symbolic-init persistent state outside every operand cone. *)
  let tagmem = N.reg nl ~name:"tagmem" ~init:N.Init_symbolic ~width:8 () in
  N.connect_reg nl tagmem tagmem;
  (* T305: an enabled register. *)
  let held =
    N.reg nl ~enable:op_valid ~name:"held" ~init:(N.Init_value (Bitvec.zero 4))
      ~width:4 ()
  in
  N.connect_reg nl held (N.input nl "held_in" 4);
  {
    Meta.design_name = "tbroken";
    nl;
    ifrs = [ { Meta.ifr_valid; ifr_pc; ifr_word } ];
    operand_stage_valid = op_valid;
    operand_stage_pc = op_pc;
    commit;
    commit_pc;
    flush = commit;
    ufsms =
      [
        {
          Meta.ufsm_name = "u";
          pcr;
          vars = [ svar ];
          idle_states = [ bv 2 0 ];
          state_labels = [ (bv 2 1, "A") ];
        };
      ];
    operand_regs = [ ("rs1", rs1); ("rs2", rs2) ];
    arf = [ arf0 ];
    amem = [];
    extra_assumes = [];
  }

let test_taintflow_defects () =
  let diags = Lint.Taintflow.run (taint_broken_meta ()) in
  let find code = List.filter (fun d -> d.D.code = code) diags in
  List.iter
    (fun code ->
      Alcotest.(check bool) ("finds " ^ code) true (find code <> []))
    [ "T301"; "T302"; "T303"; "T304"; "T305" ];
  Alcotest.(check bool) "T304 names rs2" true
    (List.exists (fun d -> d.D.signal_name = Some "rs2_val") (find "T304"));
  Alcotest.(check bool) "T305 names held" true
    (List.exists (fun d -> d.D.signal_name = Some "held") (find "T305"));
  Alcotest.(check bool) "T304 is an error" true
    (List.for_all (fun d -> d.D.severity = D.Error) (find "T304"));
  Alcotest.(check bool) "T301/T302/T303 are not errors" true
    (List.for_all
       (fun d -> d.D.severity <> D.Error)
       (find "T301" @ find "T302" @ find "T303"));
  (* The driver surfaces the taint-flow pass. *)
  let r = Lint.Driver.run_design (taint_broken_meta ()) in
  Alcotest.(check bool) "driver runs taintflow" true
    (List.exists (fun d -> d.D.code = "T304") r.D.diags)

(* The CVA6-lite scoreboard µFSMs are 3-bit with five used states and the
   LDU is 2-bit with three: the abstraction must prove exactly the 13
   unlabelled residues dead — the covers the synthesis pre-pass prunes. *)
let test_cva6_static_dead () =
  let dead =
    Lint.Reach.statically_dead_unlabelled
      (Designs.Core.build Designs.Core.baseline)
  in
  Alcotest.(check int) "13 statically-dead unlabelled states" 13
    (List.length dead);
  Alcotest.(check bool) "covers every scoreboard entry" true
    (List.for_all
       (fun i ->
         List.exists (fun (u, _) -> u = Printf.sprintf "scb%d" i) dead)
       [ 0; 1; 2; 3 ])

(* Synthesis end-to-end: static pruning must not change the report digest,
   and the pruned covers must vanish from the duv_pl property count. *)
let run_ibex_engine ~static_prune () =
  let design () = Designs.Ibex.build () in
  let stimulus ~pins ~rotate meta = Designs.Stimulus.ibex ~pins ~rotate meta in
  Synthlc.Engine.run ~config:Test_parallel.light_config
    ~synth_config:Test_parallel.light_config ~static_prune ~stimulus ~design
    ~jobs:1
    ~instructions:
      [ Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD; Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.DIV ]
    ~transmitters:[ Isa.DIV; Isa.ADD ]
    ~kinds:[ Synthlc.Types.Intrinsic ]
    ~revisit_count_labels:[ "divU" ] ~iuv_pc:Designs.Core.iuv_pc ()

let duv_stage (r : Synthlc.Engine.report) =
  List.map
    (fun (t : Synthlc.Engine.transponder_report) ->
      List.assoc "duv_pl" t.Synthlc.Engine.synth.Mupath.Synth.stage_stats)
    r.Synthlc.Engine.transponders

let test_static_prune_digest_identical () =
  let on = run_ibex_engine ~static_prune:true () in
  let off = run_ibex_engine ~static_prune:false () in
  Alcotest.(check string) "digest identical across prune modes"
    (Synthlc.Engine.report_digest off)
    (Synthlc.Engine.report_digest on);
  let pruned =
    List.fold_left
      (fun a (s : Mupath.Synth.stage_stats) -> a + s.Mupath.Synth.pruned_static)
      0 (duv_stage on)
  in
  Alcotest.(check bool) "pre-pass prunes covers" true (pruned > 0);
  Alcotest.(check int) "audit mode reports no static prunes" 0
    (List.fold_left
       (fun a (s : Mupath.Synth.stage_stats) -> a + s.Mupath.Synth.pruned_static)
       0 (duv_stage off));
  (* Every statically-discharged cover reappears as an audit property. *)
  List.iter2
    (fun (son : Mupath.Synth.stage_stats) (soff : Mupath.Synth.stage_stats) ->
      Alcotest.(check int) "audit props = pruned covers"
        (son.Mupath.Synth.props + son.Mupath.Synth.pruned_static)
        soff.Mupath.Synth.props)
    (duv_stage on) (duv_stage off)

let suite =
  ( "lint",
    [
      Alcotest.test_case "built-in designs are clean" `Quick
        test_builtin_designs_clean;
      Alcotest.test_case "seeded annotation defects" `Quick test_seeded_defects;
      Alcotest.test_case "seeded structural defects" `Quick
        test_structural_defects;
      Alcotest.test_case "exit codes and JSON" `Quick test_exit_codes_and_json;
      Alcotest.test_case "seeded taint-flow defects" `Quick
        test_taintflow_defects;
      Alcotest.test_case "cva6 statically-dead states" `Quick
        test_cva6_static_dead;
      Alcotest.test_case "static prune digest-identical" `Quick
        test_static_prune_digest_identical;
    ] )
