(* Differential validation of the bit-blasted BMC path against the
   simulator: any bit-pattern the simulator can produce must be BMC-
   reachable (with the simulation pre-pass disabled, so the SAT encoding
   itself is exercised), and values the circuit can never produce must be
   unreachable. *)

module N = Hdl.Netlist
module C = Mc.Checker

(* A small sequential circuit exercising every cell kind, parameterized by
   constants so qcheck can vary the logic. *)
let build_circuit k1 k2 =
  let nl = N.create "diff" in
  let module D = Hdl.Dsl.Make (struct
    let nl = nl
  end) in
  let open D in
  let a = input "a" 6 in
  let b = input "b" 6 in
  let acc = reg ~name:"acc" ~width:6 () in
  let phase = reg ~name:"phase" ~width:2 () in
  let mixed =
    mux (bit phase 0)
      ((a &: of_int 6 k1) +: (b ^: acc))
      ((a |: acc) -: (b *: of_int 6 k2))
  in
  acc <== mixed;
  phase <== (phase +: of_int 2 1);
  (* 1-bit probes for cover conjunctions *)
  List.iteri
    (fun i _ ->
      let w = wire ~name:(Printf.sprintf "acc%d" i) 1 in
      w <== bit acc i)
    (List.init 6 (fun i -> i));
  let hi = wire ~name:"acc_hi" 1 in
  hi <== (acc >=: of_int 6 32);
  nl

let sim_pattern nl ~seed ~cycles =
  let sim = Sim.create ~seed nl in
  let rng = Random.State.make [| seed; 33 |] in
  let a = Option.get (N.find_named nl "a") in
  let b = Option.get (N.find_named nl "b") in
  for _ = 1 to cycles do
    Sim.poke sim a (Bitvec.random rng 6);
    Sim.poke sim b (Bitvec.random rng 6);
    Sim.eval sim;
    Sim.step sim
  done;
  Sim.eval sim;
  List.init 6 (fun i ->
      let s = Option.get (N.find_named nl (Printf.sprintf "acc%d" i)) in
      (s, Sim.peek_bool sim s))

let no_sim_config =
  {
    C.default_config with
    C.bmc_depth = 8;
    sim_episodes = 0;
    induction_max_k = 0;
  }

let test_simulated_patterns_reachable () =
  let rng = Random.State.make [| 4242 |] in
  for trial = 1 to 6 do
    let k1 = Random.State.int rng 64 and k2 = Random.State.int rng 64 in
    let nl = build_circuit k1 k2 in
    let chk = C.create ~config:no_sim_config ~assumes:[] nl in
    for run = 1 to 3 do
      let cycles = 1 + Random.State.int rng 7 in
      let pattern = sim_pattern nl ~seed:((trial * 17) + run) ~cycles in
      match C.check_cover chk pattern with
      | C.Reachable _ -> ()
      | o ->
        Alcotest.failf "trial %d run %d: simulated pattern not BMC-reachable (%s)"
          trial run (C.outcome_tag o)
    done
  done

let test_impossible_pattern_unreachable () =
  (* acc >= 32 requires bit 5; demanding acc_hi with acc5 = 0 is absurd. *)
  let nl = build_circuit 21 9 in
  let chk = C.create ~config:no_sim_config ~assumes:[] nl in
  let s n = Option.get (N.find_named nl n) in
  match C.check_cover chk [ (s "acc_hi", true); (s "acc5", false) ] with
  | C.Unreachable _ -> ()
  | o -> Alcotest.failf "expected unreachable, got %s" (C.outcome_tag o)

let test_model_values_consistent () =
  (* When BMC finds a witness, the witness's recorded values must satisfy
     the cover conjunction. *)
  let nl = build_circuit 13 5 in
  let chk = C.create ~config:no_sim_config ~assumes:[] nl in
  let s n = Option.get (N.find_named nl n) in
  let cover = [ (s "acc0", true); (s "acc1", false); (s "acc2", true) ] in
  match C.check_cover chk cover with
  | C.Reachable cex ->
    let last = C.Cex.length cex - 1 in
    let acc = Bitvec.to_int (C.Cex.value_exn cex "acc" ~cycle:last) in
    Alcotest.(check int) "acc bits match cover" 0b101 (acc land 0b111)
  | o -> Alcotest.failf "expected reachable, got %s" (C.outcome_tag o)

let test_assume_respected_in_model () =
  (* Pin input a = 0 via an assumption; the accumulator still evolves, and
     every witness must satisfy the assumption at every cycle. *)
  let nl = build_circuit 63 1 in
  let module D = Hdl.Dsl.Make (struct
    let nl = nl
  end) in
  let open D in
  let a = Option.get (N.find_named nl "a") in
  let a_zero = wire ~name:"a_zero" 1 in
  a_zero <== (a ==: zero 6);
  let chk = C.create ~config:no_sim_config ~assumes:[ a_zero ] nl in
  let s n = Option.get (N.find_named nl n) in
  match C.check_cover chk [ (s "acc0", true) ] with
  | C.Reachable cex ->
    for c = 0 to C.Cex.length cex - 1 do
      Alcotest.(check int)
        (Printf.sprintf "a = 0 at cycle %d" c)
        0
        (Bitvec.to_int (C.Cex.value_exn cex "a" ~cycle:c))
    done
  | o -> Alcotest.failf "expected reachable, got %s" (C.outcome_tag o)

let test_cse_hit_rate () =
  (* Unrolling the same combinational logic over several time steps must
     share gate encodings: the structural-hashing cache sees hits, and the
     CSE'd unrolling allocates fewer solver variables. *)
  let nl = build_circuit 21 9 in
  let b = Mc.Blast.create ~cse:true ~initial:`Reset ~assumes:[] nl in
  Mc.Blast.ensure_depth b 6;
  let hits, lookups = Mc.Blast.cse_stats b in
  Alcotest.(check bool) "cse hits" true (hits > 0);
  Alcotest.(check bool) "hits <= lookups" true (hits <= lookups);
  let nl' = build_circuit 21 9 in
  let b' = Mc.Blast.create ~cse:false ~initial:`Reset ~assumes:[] nl' in
  Mc.Blast.ensure_depth b' 6;
  Alcotest.(check bool) "cse off counts nothing" true
    (Mc.Blast.cse_stats b' = (0, 0));
  Alcotest.(check bool) "cse shrinks the encoding" true
    (Sat.Solver.nvars (Mc.Blast.solver b) < Sat.Solver.nvars (Mc.Blast.solver b'))

let test_cse_outcomes_agree () =
  (* CSE is an encoding-only change: verdicts agree with the non-CSE
     encoding on both reachable and unreachable covers. *)
  let outcome_with cse =
    let nl = build_circuit 13 5 in
    let chk =
      C.create ~config:{ no_sim_config with C.encode_cse = cse } ~assumes:[] nl
    in
    let s n = Option.get (N.find_named nl n) in
    ( C.outcome_tag (C.check_cover chk [ (s "acc0", true); (s "acc2", true) ]),
      C.outcome_tag (C.check_cover chk [ (s "acc_hi", true); (s "acc5", false) ]) )
  in
  Alcotest.(check (pair string string))
    "cse on/off verdicts" (outcome_with false) (outcome_with true)

(* Portfolio-vs-sequential verdict agreement on random netlist covers: the
   same checker configuration, portfolio on vs off, must produce identical
   outcomes and witnesses (the canonical solver is authoritative). *)
let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000)

let portfolio_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12 ~name:"portfolio agrees on netlist covers"
       arb_seed (fun seed ->
         let rng = Random.State.make [| seed; 77 |] in
         let k1 = Random.State.int rng 64 and k2 = Random.State.int rng 64 in
         let bits =
           List.filter_map
             (fun i ->
               match Random.State.int rng 3 with
               | 0 -> Some (i, true)
               | 1 -> Some (i, false)
               | _ -> None)
             [ 0; 1; 2; 3 ]
         in
         let cover_of nl =
           List.map
             (fun (i, pol) ->
               (Option.get (N.find_named nl (Printf.sprintf "acc%d" i)), pol))
             bits
         in
         let outcome_with domains =
           let nl = build_circuit k1 k2 in
           let chk =
             C.create
               ~config:{ no_sim_config with C.portfolio_domains = domains }
               ~assumes:[] nl
           in
           match C.check_cover chk (cover_of nl) with
           | C.Reachable cex ->
             Printf.sprintf "reachable:%d:%d" (C.Cex.length cex)
               (Bitvec.to_int
                  (C.Cex.value_exn cex "acc" ~cycle:(C.Cex.length cex - 1)))
           | o -> C.outcome_tag o
         in
         bits = [] || outcome_with 1 = outcome_with 3))

let suite =
  ( "blast",
    [
      Alcotest.test_case "simulated patterns BMC-reachable" `Quick
        test_simulated_patterns_reachable;
      Alcotest.test_case "impossible pattern unreachable" `Quick
        test_impossible_pattern_unreachable;
      Alcotest.test_case "witness consistent with cover" `Quick
        test_model_values_consistent;
      Alcotest.test_case "assumptions hold along witnesses" `Quick
        test_assume_respected_in_model;
      Alcotest.test_case "cse hit rate" `Quick test_cse_hit_rate;
      Alcotest.test_case "cse outcomes agree" `Quick test_cse_outcomes_agree;
      portfolio_qcheck;
    ] )
