(* Aggregate test runner: `dune runtest` executes every suite. *)
let () =
  Alcotest.run "synthlc-repro"
    [
      Test_bitvec.suite;
      Test_sat.suite;
      Test_hdl.suite;
      Test_equiv.suite;
      Test_sim.suite;
      Test_isa.suite;
      Test_uhb.suite;
      Test_mc.suite;
      Test_blast.suite;
      Test_harness.suite;
      Test_formats.suite;
      Test_ift.suite;
      Test_core.suite;
      Test_cache.suite;
      Test_ibex.suite;
      Test_mupath.suite;
      Test_synthlc.suite;
      Test_pool.suite;
      Test_parallel.suite;
      Test_obs.suite;
      Test_vcache.suite;
      Test_analysis.suite;
      Test_absint.suite;
      Test_taint.suite;
      Test_lint.suite;
      Test_fuzz.suite;
      Test_frontend.suite;
      Test_sweep.suite;
    ]
