(* SAT solver tests: hand-built instances, pigeonhole UNSAT, assumption
   handling, conflict budgets, and a differential qcheck against a
   brute-force evaluator on random small CNFs. *)

module S = Sat.Solver

let mk nvars clauses =
  let s = S.create () in
  for _ = 1 to nvars do
    ignore (S.new_var s)
  done;
  List.iter (S.add_clause s) clauses;
  s

let lit v pol = if pol then S.pos v else S.neg_of_var v

let test_trivial () =
  let s = mk 1 [ [ S.pos 0 ] ] in
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "model" true (S.value s 0);
  let s = mk 1 [ [ S.pos 0 ]; [ S.neg_of_var 0 ] ] in
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  let s = mk 0 [ [] ] in
  Alcotest.(check bool) "empty clause" true (S.solve s = S.Unsat)

let test_chain_implications () =
  (* x0 -> x1 -> ... -> x19, x0 forced true. *)
  let n = 20 in
  let clauses =
    [ S.pos 0 ]
    :: List.init (n - 1) (fun i -> [ S.neg_of_var i; S.pos (i + 1) ])
  in
  let s = mk n clauses in
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  for i = 0 to n - 1 do
    Alcotest.(check bool) (Printf.sprintf "x%d" i) true (S.value s i)
  done

let php holes =
  (* holes+1 pigeons into [holes] holes: classic UNSAT family. *)
  let var p h = (p * holes) + h in
  let s = S.create () in
  for _ = 0 to ((holes + 1) * holes) - 1 do
    ignore (S.new_var s)
  done;
  for p = 0 to holes do
    S.add_clause s (List.init holes (fun h -> S.pos (var p h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to holes do
      for p2 = p1 + 1 to holes do
        S.add_clause s [ S.neg_of_var (var p1 h); S.neg_of_var (var p2 h) ]
      done
    done
  done;
  s

let test_pigeonhole () =
  Alcotest.(check bool) "php5 unsat" true (S.solve (php 5) = S.Unsat);
  Alcotest.(check bool) "php6 unsat" true (S.solve (php 6) = S.Unsat)

let test_budget () =
  let s = php 9 in
  (* A tiny conflict budget must give up. *)
  Alcotest.(check bool) "unknown under budget" true
    (S.solve ~max_conflicts:10 s = S.Unknown);
  (* The solver stays usable afterwards. *)
  Alcotest.(check bool) "still solvable" true (S.solve (php 5) = S.Unsat)

let test_assumptions () =
  let s = mk 3 [ [ S.pos 0; S.pos 1 ]; [ S.neg_of_var 2; S.pos 0 ] ] in
  Alcotest.(check bool) "sat free" true (S.solve s = S.Sat);
  Alcotest.(check bool) "unsat under assumptions" true
    (S.solve ~assumptions:[ S.neg_of_var 0; S.neg_of_var 1 ] s = S.Unsat);
  Alcotest.(check bool) "sat again" true
    (S.solve ~assumptions:[ S.neg_of_var 0 ] s = S.Sat);
  Alcotest.(check bool) "assumption forced x1" true (S.value s 1);
  Alcotest.(check bool) "assumption pair x2 -> x0" true
    (S.solve ~assumptions:[ S.pos 2; S.neg_of_var 0 ] s = S.Unsat);
  (* Incremental: add a clause after solving. *)
  S.add_clause s [ S.neg_of_var 0 ];
  S.add_clause s [ S.neg_of_var 1 ];
  Alcotest.(check bool) "now unsat" true (S.solve s = S.Unsat)

(* Differential testing against brute force. *)
let eval_clause asn c = List.exists (fun l -> asn.(S.var_of l) = S.is_pos l) c

let brute_force nvars clauses =
  let asn = Array.make (max nvars 1) false in
  let rec go v =
    if v = nvars then List.for_all (eval_clause asn) clauses
    else begin
      asn.(v) <- false;
      go (v + 1)
      ||
      (asn.(v) <- true;
       go (v + 1))
    end
  in
  go 0

let arb_cnf =
  QCheck.make
    ~print:(fun (nv, cls) ->
      Printf.sprintf "nv=%d cls=%s" nv
        (String.concat "; "
           (List.map (fun c -> String.concat "," (List.map string_of_int c)) cls)))
    QCheck.Gen.(
      int_range 1 10 >>= fun nv ->
      list_size (int_range 1 40)
        (list_size (int_range 1 4)
           (int_range 0 ((2 * nv) - 1)))
      >>= fun cls -> return (nv, cls))

(* --- learnt-DB reduction ------------------------------------------------ *)

let test_reduce_db_shrinks () =
  (* Drive php 8 under a budget large enough to accumulate learnt clauses
     past the (small) limit; the automatic reduction must fire and shrink
     the DB below its peak. *)
  let s = php 8 in
  S.set_learnt_limit s 50;
  ignore (S.solve ~max_conflicts:2_000 s);
  Alcotest.(check bool) "reduce fired" true (S.num_reduces s > 0);
  (* Learning resumes after the last automatic reduce, so compare around an
     explicit one: the DB must shrink (php learnt clauses are long and
     high-LBD, so the removable set is non-empty). *)
  let before = S.num_learnts s in
  S.reduce_db s;
  Alcotest.(check bool) "manual reduce shrinks" true (S.num_learnts s < before);
  Alcotest.(check bool) "peak above current" true
    (S.learnt_peak s > S.num_learnts s);
  (* The solver stays sound after reductions. *)
  Alcotest.(check bool) "php5 still unsat" true (S.solve (php 5) = S.Unsat)

let test_reduce_db_disabled () =
  let s = php 6 in
  S.set_reduce_db s false;
  S.set_learnt_limit s 1;
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  Alcotest.(check int) "no reduce events" 0 (S.num_reduces s)

(* --- model guard -------------------------------------------------------- *)

let test_model_guard () =
  let expect_no_model f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  (* Sat: model readable. *)
  let s = mk 2 [ [ S.pos 0 ]; [ S.neg_of_var 1 ] ] in
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "has_model" true (S.has_model s);
  Alcotest.(check bool) "model x0" true (S.value s 0);
  (* Unsat: reads must raise instead of returning stale phase. *)
  S.add_clause s [ S.neg_of_var 0 ];
  Alcotest.(check bool) "model survives add_clause" true (S.has_model s);
  Alcotest.(check bool) "now unsat" true (S.solve s = S.Unsat);
  Alcotest.(check bool) "no model" false (S.has_model s);
  expect_no_model (fun () -> S.value s 0);
  expect_no_model (fun () -> S.lit_value s (S.pos 0));
  (* Unknown: same guard. *)
  let s = php 9 in
  Alcotest.(check bool) "unknown" true (S.solve ~max_conflicts:10 s = S.Unknown);
  Alcotest.(check bool) "no model after unknown" false (S.has_model s);
  expect_no_model (fun () -> S.value s 0)

(* --- DIMACS round-trip --------------------------------------------------- *)

let test_dimacs_roundtrip () =
  let cls = [ [ 1; -2 ]; [ 2; 3; -1 ]; [ -3 ] ] in
  (match Sat.Dimacs.parse (Sat.Dimacs.to_string ~nvars:3 cls) with
  | Ok (nv, cls') ->
    Alcotest.(check int) "nvars" 3 nv;
    Alcotest.(check bool) "clauses" true (cls = cls')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Export -> load is equisatisfiable, including level-0 units and after a
     solve (learnt clauses are implied, so the verdict is preserved). *)
  let check_export nv cls =
    let s = mk nv cls in
    let r = S.solve s in
    let s2 = S.create () in
    (match Sat.Dimacs.load s2 (Sat.Dimacs.of_solver s) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "load failed: %s" e);
    Alcotest.(check bool) "export preserves verdict" true (S.solve s2 = r)
  in
  check_export 3 [ [ S.pos 0 ]; [ S.neg_of_var 0; S.pos 1 ]; [ S.pos 2; S.neg_of_var 1 ] ];
  check_export 2 [ [ S.pos 0 ]; [ S.neg_of_var 0 ] ];
  check_export 4 [ [ S.pos 0; S.pos 1 ]; [ S.neg_of_var 2; S.pos 3 ] ]

(* Random assumption sequences: a CNF plus several queries, each a list of
   assumption literals. *)
let arb_cnf_queries =
  QCheck.make
    ~print:(fun (nv, cls, qs) ->
      Printf.sprintf "nv=%d cls=%s qs=%s" nv
        (String.concat "; "
           (List.map (fun c -> String.concat "," (List.map string_of_int c)) cls))
        (String.concat "; "
           (List.map (fun q -> String.concat "," (List.map string_of_int q)) qs)))
    QCheck.Gen.(
      int_range 1 12 >>= fun nv ->
      list_size (int_range 1 30)
        (list_size (int_range 1 4) (int_range 0 ((2 * nv) - 1)))
      >>= fun cls ->
      list_size (int_range 1 5)
        (list_size (int_range 0 3) (int_range 0 ((2 * nv) - 1)))
      >>= fun qs -> return (nv, cls, qs))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300 ~name:"solver agrees with brute force" arb_cnf
         (fun (nv, cls) ->
           let s = mk nv cls in
           match S.solve s with
           | S.Sat ->
             (* verify the model *)
             List.for_all
               (fun c -> List.exists (fun l -> S.lit_value s l) c)
               cls
             && brute_force nv cls
           | S.Unsat -> not (brute_force nv cls)
           | S.Unknown -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:100 ~name:"assumptions consistent with added units"
         arb_cnf (fun (nv, cls) ->
           let a = S.pos 0 in
           let s1 = mk nv cls in
           let r1 = S.solve ~assumptions:[ a ] s1 in
           let s2 = mk nv (cls @ [ [ a ] ]) in
           let r2 = S.solve s2 in
           r1 = r2));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150
         ~name:"incremental = fresh per query = brute force" arb_cnf_queries
         (fun (nv, cls, qs) ->
           (* One incremental solver answers the whole assumption sequence;
              a fresh solver (and brute force over clauses + assumption
              units) must agree on every query. *)
           let inc = mk nv cls in
           List.for_all
             (fun q ->
               let r_inc = S.solve ~assumptions:q inc in
               let r_fresh = S.solve ~assumptions:q (mk nv cls) in
               let r_brute =
                 brute_force nv (cls @ List.map (fun l -> [ l ]) q)
               in
               r_inc = r_fresh
               &&
               match r_inc with
               | S.Sat -> r_brute
               | S.Unsat -> not r_brute
               | S.Unknown -> false)
             qs));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150 ~name:"sound under aggressive reduce_db"
         arb_cnf (fun (nv, cls) ->
           let s = mk nv cls in
           S.set_learnt_limit s 1;
           match S.solve s with
           | S.Sat ->
             List.for_all
               (fun c -> List.exists (fun l -> S.lit_value s l) c)
               cls
           | S.Unsat -> not (brute_force nv cls)
           | S.Unknown -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:60
         ~name:"portfolio verdict and model match sequential" arb_cnf
         (fun (nv, cls) ->
           let seq = mk nv cls in
           let r_seq = S.solve seq in
           let s = mk nv cls in
           let pr = S.solve_portfolio ~domains:3 s in
           pr.S.p_result = r_seq && pr.S.p_agree
           &&
           (* The canonical solver is unperturbed, so on Sat its model is
              bit-identical to the sequential one. *)
           match r_seq with
           | S.Sat ->
             List.init nv (fun v -> v)
             |> List.for_all (fun v -> S.value s v = S.value seq v)
           | _ -> true));
  ]

let suite =
  ( "sat",
    [
      Alcotest.test_case "trivial" `Quick test_trivial;
      Alcotest.test_case "implication chain" `Quick test_chain_implications;
      Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
      Alcotest.test_case "conflict budget" `Quick test_budget;
      Alcotest.test_case "assumptions" `Quick test_assumptions;
      Alcotest.test_case "reduce_db shrinks learnt DB" `Quick test_reduce_db_shrinks;
      Alcotest.test_case "reduce_db can be disabled" `Quick test_reduce_db_disabled;
      Alcotest.test_case "model guard" `Quick test_model_guard;
      Alcotest.test_case "dimacs round-trip" `Quick test_dimacs_roundtrip;
    ]
    @ qcheck_tests )

let _ = lit
