(* Static taint-flow tests: unit rules of Hdl.Analysis.taint_reach (chain
   reach, blocked kill, value-aware precision), the qcheck soundness
   property (the static mask contains every bit the Ift-instrumented
   design can dynamically taint, in the matching precision mode), the
   static leakage grid on ibex_lite, and the end-to-end digest-identity
   contract of SynthLC's static flow pruning across its three modes. *)

module N = Hdl.Netlist
module A = Hdl.Analysis

let bv w i = Bitvec.of_int ~width:w i

let mk_src nl =
  let src = N.reg nl ~name:"src" ~init:(N.Init_value (bv 8 0)) ~width:8 () in
  N.connect_reg nl src (N.input nl "d" 8);
  src

let mk_dst nl f =
  let dst = N.reg nl ~name:"dst" ~init:(N.Init_value (bv 8 0)) ~width:8 () in
  N.connect_reg nl dst f;
  dst

let test_chain_and_kill () =
  (* src -> xor -> mid -> xor -> dst, with mid optionally blocked. *)
  let build blocked_mid =
    let nl = N.create "chain" in
    let src = mk_src nl in
    let other = N.input nl "o" 8 in
    let mid = N.reg nl ~name:"mid" ~init:(N.Init_value (bv 8 0)) ~width:8 () in
    N.connect_reg nl mid (N.op2 nl N.Xor src other);
    let dst = mk_dst nl (N.op2 nl N.Xor mid other) in
    let blocked = if blocked_mid then [ mid ] else [] in
    (A.taint_reach ~blocked ~sources:[ src ] nl, src, mid, dst)
  in
  let masks, src, mid, dst = build false in
  Alcotest.(check bool) "src seeded" true (A.taint_reaches masks src);
  Alcotest.(check bool) "mid reached" true (A.taint_reaches masks mid);
  Alcotest.(check bool) "dst reached through mid" true (A.taint_reaches masks dst);
  let masks, _, mid, dst = build true in
  Alcotest.(check bool) "blocked mid killed" false (A.taint_reaches masks mid);
  Alcotest.(check bool) "kill cuts the only path" false (A.taint_reaches masks dst)

let test_blocked_source_injects () =
  (* A register that is both source and blocked stays a source — the
     inject-over-blocked priority of Ift's phase 3. *)
  let nl = N.create "sb" in
  let src = mk_src nl in
  let masks = A.taint_reach ~blocked:[ src ] ~sources:[ src ] nl in
  Alcotest.(check bool) "source wins over blocked" true (A.taint_reaches masks src)

let test_precise_const_and () =
  (* src & 0x0F: the precise rule confines taint to the constant's set
     bits; the imprecise union rule spreads it across the word. *)
  let build precise =
    let nl = N.create "cand" in
    let src = mk_src nl in
    let dst = mk_dst nl (N.op2 nl N.And src (N.const nl (bv 8 0x0F))) in
    ((A.taint_reach ~precise ~sources:[ src ] nl).(dst) : Bitvec.t)
  in
  Alcotest.(check int) "precise: masked to 0x0F" 0x0F (Bitvec.to_int (build true));
  Alcotest.(check int) "imprecise: whole word" 0xFF (Bitvec.to_int (build false))

let test_precise_mux_equal_const_branches () =
  (* mux on a tainted select with identical constant branches leaks
     nothing under the precise rule; the imprecise rule taints the word. *)
  let build precise =
    let nl = N.create "mux" in
    let src = mk_src nl in
    let sel = N.extract nl ~hi:0 ~lo:0 src in
    let c = N.const nl (bv 8 0x3C) in
    let dst = mk_dst nl (N.mux nl ~sel ~on_true:c ~on_false:c) in
    ((A.taint_reach ~precise ~sources:[ src ] nl).(dst) : Bitvec.t)
  in
  Alcotest.(check int) "precise: equal branches leak nothing" 0
    (Bitvec.to_int (build true));
  Alcotest.(check int) "imprecise: select taints word" 0xFF
    (Bitvec.to_int (build false))

let test_arithmetic_whole_word () =
  let nl = N.create "add" in
  let src = mk_src nl in
  (* only bit 0 of src feeds the adder, but the whole sum is tainted *)
  let b0 = N.extract nl ~hi:0 ~lo:0 src in
  let wide = N.concat nl [ N.const nl (bv 7 0); b0 ] in
  let dst = mk_dst nl (N.op2 nl N.Add wide (N.input nl "o" 8)) in
  let masks = A.taint_reach ~sources:[ src ] nl in
  Alcotest.(check int) "add taints whole word" 0xFF (Bitvec.to_int masks.(dst))

(* --- qcheck: static >= dynamic ---------------------------------------- *)

(* Build a random two-register netlist, compute the static masks on the
   bare netlist, then instrument it with Ift in the SAME precision mode
   and simulate under random stimulus with intermittent injection: no
   original signal may ever carry a dynamic taint bit outside its static
   mask.  This is exactly the property SynthLC's flow pruning relies on. *)
let random_comb rng nl src other =
  let const () = N.const nl (bv 8 (Random.State.int rng 256)) in
  let rec gen depth =
    if depth = 0 then
      match Random.State.int rng 3 with
      | 0 -> src
      | 1 -> other
      | _ -> const ()
    else
      let a = gen (depth - 1) and b = gen (depth - 1) in
      match Random.State.int rng 9 with
      | 0 -> N.op2 nl N.And a b
      | 1 -> N.op2 nl N.Or a b
      | 2 -> N.op2 nl N.Xor a b
      | 3 -> N.op2 nl N.Add a b
      | 4 -> N.not_ nl a
      | 5 ->
        let sel = N.extract nl ~hi:0 ~lo:0 b in
        N.mux nl ~sel ~on_true:a ~on_false:b
      | 6 -> N.concat nl [ N.extract nl ~hi:3 ~lo:0 a; N.extract nl ~hi:7 ~lo:4 b ]
      | 7 ->
        let c = N.op2 nl N.Ult a b in
        N.mux nl ~sel:c ~on_true:a ~on_false:(N.op2 nl N.Sub a b)
      | _ -> N.op2 nl N.Mul a (const ())
  in
  gen (1 + Random.State.int rng 3)

let check_static_contains_dynamic ~precise seed =
  let rng = Random.State.make [| seed |] in
  let nl = N.create "rand" in
  let inj = N.input nl "inj" 1 in
  let data = N.input nl "data" 8 in
  let other = N.input nl "other" 8 in
  let src = N.reg nl ~name:"src" ~init:(N.Init_value (bv 8 0)) ~width:8 () in
  N.connect_reg nl src data;
  let f = random_comb rng nl src other in
  let dst = mk_dst nl f in
  let blocked = if Random.State.bool rng then [ dst ] else [] in
  let n0 = N.num_nodes nl in
  let masks = A.taint_reach ~precise ~blocked ~sources:[ src ] nl in
  let ift = Ift.instrument ~precise ~inject:[ (src, inj) ] ~blocked nl in
  let sim = Sim.create nl in
  let ok = ref true in
  for cycle = 1 to 24 do
    Sim.poke sim inj (Bitvec.of_bool (Random.State.int rng 3 = 0));
    Sim.poke sim data (bv 8 (Random.State.int rng 256));
    Sim.poke sim other (bv 8 (Random.State.int rng 256));
    Sim.eval sim;
    for s = 0 to n0 - 1 do
      let dyn = Sim.peek sim (Ift.taint_of ift s) in
      if not (Bitvec.is_zero (Bitvec.logand dyn (Bitvec.lognot masks.(s)))) then begin
        ok := false;
        QCheck.Test.fail_reportf
          "seed %d cycle %d: signal %d dynamic taint %s escapes static mask %s"
          seed cycle s
          (Bitvec.to_hex_string dyn)
          (Bitvec.to_hex_string masks.(s))
      end
    done;
    Sim.step sim
  done;
  !ok

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let qcheck_static_superset_precise =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"static taint contains dynamic (precise)"
       arb_seed
       (check_static_contains_dynamic ~precise:true))

let qcheck_static_superset_imprecise =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"static taint contains dynamic (imprecise)" arb_seed
       (check_static_contains_dynamic ~precise:false))

(* --- imprecise IFT is cache-namespaced --------------------------------- *)

(* A precise run must never replay an imprecise run's verdicts (or vice
   versa): the [|ift:imprecise] salt keeps their cache keys disjoint even
   where the instrumented-netlist digests happen to agree. *)
let test_imprecise_cache_namespaced () =
  let dir =
    let f = Filename.temp_file "taintcache" ".d" in
    Sys.remove f;
    f
  in
  let design () = Test_mupath.toy_design () in
  let decisions =
    let r =
      Mupath.Synth.run ~config:Test_mupath.toy_config ~meta:(design ())
        ~iuv:(Isa.make Isa.ADD) ~iuv_pc:2 ()
    in
    List.filter (fun (_, ds) -> List.length ds > 1) r.Mupath.Synth.decisions
  in
  let run ~precise =
    let cache = Vcache.create ~dir () in
    let a =
      Synthlc.Flow.analyze ~cache ~config:Test_mupath.toy_config ~precise
        ~design ~transponder:(Isa.make Isa.ADD) ~decisions
        ~transmitters:[ Isa.ADD ] ~kind:Synthlc.Types.Intrinsic
        ~operand:Synthlc.Types.Rs1 ~iuv_pc:2 ()
    in
    let hits, misses, _ = Vcache.counters cache in
    (a, hits, misses)
  in
  let _, h1, m1 = run ~precise:true in
  Alcotest.(check int) "cold precise run has no hits" 0 h1;
  Alcotest.(check bool) "cold precise run misses" true (m1 > 0);
  let _, h2, _ = run ~precise:true in
  Alcotest.(check bool) "warm precise run replays" true (h2 > 0);
  let _, h3, m3 = run ~precise:false in
  Alcotest.(check int) "imprecise run shares nothing" 0 h3;
  Alcotest.(check bool) "imprecise run misses" true (m3 > 0)

(* --- the static leakage grid on a real design -------------------------- *)

let test_ibex_grid () =
  let grid =
    Synthlc.Engine.static_leakage_grid ~precise:true (fun () ->
        Designs.Ibex.build ())
  in
  Alcotest.(check int) "both operands analysed" 2 (List.length grid);
  List.iter
    (fun (op, live) ->
      Alcotest.(check bool)
        (Synthlc.Types.operand_name op ^ " taint reaches some PL")
        true (live <> []))
    grid

(* --- end-to-end: prune-mode digest identity ---------------------------- *)

(* The ibex DIV workload has decision sources with empty destination sets
   (complete/squash), whose covers are statically dead; digest identity
   across the three prune modes plus q_pruned_static > 0 in the default
   mode is the acceptance contract. *)
let run_ibex ?(precise = true) mode =
  let design () = Designs.Ibex.build () in
  let stimulus ~pins ~rotate meta = Designs.Stimulus.ibex ~pins ~rotate meta in
  Synthlc.Engine.run ~config:Test_parallel.light_config
    ~synth_config:Test_parallel.light_config ~precise ~static_flow_prune:mode
    ~stimulus ~design ~jobs:1
    ~instructions:[ Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.DIV ]
    ~transmitters:[ Isa.DIV ]
    ~kinds:[ Synthlc.Types.Intrinsic ]
    ~revisit_count_labels:[ "divU" ] ~iuv_pc:Designs.Core.iuv_pc ()

let test_flow_prune_digest_identical () =
  let on = run_ibex Synthlc.Types.Prune_on in
  let off = run_ibex Synthlc.Types.Prune_off in
  let audit = run_ibex Synthlc.Types.Prune_audit in
  let d = Synthlc.Engine.report_digest in
  Alcotest.(check string) "digest on = off" (d off) (d on);
  Alcotest.(check string) "digest on = audit" (d audit) (d on);
  Alcotest.(check bool) "default mode prunes covers" true
    (on.Synthlc.Engine.total_flow_pruned_static > 0);
  Alcotest.(check int) "off mode discharges nothing statically" 0
    off.Synthlc.Engine.total_flow_pruned_static;
  Alcotest.(check int) "audit mode discharges nothing statically" 0
    audit.Synthlc.Engine.total_flow_pruned_static;
  (* q_props counts every considered cover in every mode. *)
  Alcotest.(check int) "flow props identical across modes"
    on.Synthlc.Engine.total_flow_props off.Synthlc.Engine.total_flow_props;
  (* The precision knob is part of the report identity. *)
  let imprecise = run_ibex ~precise:false Synthlc.Types.Prune_on in
  Alcotest.(check bool) "imprecise digest differs" true
    (d imprecise <> d on)

let suite =
  ( "taint",
    [
      Alcotest.test_case "chain reach and blocked kill" `Quick
        test_chain_and_kill;
      Alcotest.test_case "source wins over blocked" `Quick
        test_blocked_source_injects;
      Alcotest.test_case "precise constant AND" `Quick test_precise_const_and;
      Alcotest.test_case "precise equal-const mux branches" `Quick
        test_precise_mux_equal_const_branches;
      Alcotest.test_case "arithmetic whole-word" `Quick
        test_arithmetic_whole_word;
      qcheck_static_superset_precise;
      qcheck_static_superset_imprecise;
      Alcotest.test_case "imprecise IFT cache-namespaced" `Quick
        test_imprecise_cache_namespaced;
      Alcotest.test_case "ibex static leakage grid" `Quick test_ibex_grid;
      Alcotest.test_case "flow prune digest-identical" `Slow
        test_flow_prune_digest_identical;
    ] )
