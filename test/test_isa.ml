(* ISA tests: encoding/decoding totality and roundtrips, field placement,
   class and operand-usage predicates, the assembler, and golden-model
   semantics checks. *)

let test_roundtrip_all_opcodes () =
  List.iter
    (fun op ->
      let i = Isa.make ~rd:1 ~rs1:2 ~rs2:3 ~imm:0x5A op in
      let i' = Isa.decode (Isa.encode i) in
      if i <> i' then Alcotest.failf "roundtrip failed for %s" (Isa.mnemonic op))
    Isa.all_opcodes

let test_decode_total () =
  (* Every 19-bit word decodes (dense opcode space). *)
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 1000 do
    let w = Bitvec.random rng Isa.width in
    ignore (Isa.decode w)
  done

let test_fields () =
  let i = Isa.make ~rd:3 ~rs1:1 ~rs2:2 ~imm:0xAB Isa.ADD in
  let e = Isa.encode i in
  let f (hi, lo) = Bitvec.to_int (Bitvec.extract e ~hi ~lo) in
  Alcotest.(check int) "op" (Isa.opcode_to_int Isa.ADD) (f Isa.op_range);
  Alcotest.(check int) "rd" 3 (f Isa.rd_range);
  Alcotest.(check int) "rs1" 1 (f Isa.rs1_range);
  Alcotest.(check int) "rs2" 2 (f Isa.rs2_range);
  Alcotest.(check int) "imm" 0xAB (f Isa.imm_range)

let test_classes () =
  Alcotest.(check string) "div class" "div" (Isa.class_name (Isa.class_of Isa.REMU));
  Alcotest.(check string) "branch class" "branch" (Isa.class_name (Isa.class_of Isa.BGEU));
  Alcotest.(check bool) "store reads rs2" true (Isa.reads_rs2 Isa.SW);
  Alcotest.(check bool) "load does not read rs2" false (Isa.reads_rs2 Isa.LW);
  Alcotest.(check bool) "branch writes no rd" false (Isa.writes_rd Isa.BEQ);
  Alcotest.(check bool) "jal writes rd" true (Isa.writes_rd Isa.JAL);
  Alcotest.(check bool) "jal reads no rs1" false (Isa.reads_rs1 Isa.JAL);
  Alcotest.(check bool) "jalr reads rs1" true (Isa.reads_rs1 Isa.JALR);
  Alcotest.(check int) "32 opcodes" 32 (List.length Isa.all_opcodes)

let test_assembler () =
  let expect_ok src want =
    match Isa.parse src with
    | Ok i -> Alcotest.(check string) src want (Isa.to_string i)
    | Error e -> Alcotest.failf "parse %s failed: %s" src e
  in
  expect_ok "add r1, r2, r3" "add r1, r2, r3";
  expect_ok "ADDI r1, r0, 42" "addi r1, r0, 42";
  expect_ok "lw r2, 3(r1)" "lw r2, 3(r1)";
  expect_ok "sw r2, 3(r1)" "sw r2, 3(r1)";
  expect_ok "beq r1, r2, 8" "beq r1, r2, 8";
  expect_ok "jal r1, 16" "jal r1, 16";
  expect_ok "jalr r1, r2, 4" "jalr r1, r2, 4";
  expect_ok "nop" "nop";
  expect_ok "addi r1, r0, -1  # comment" "addi r1, r0, 255";
  (match Isa.parse "add r9, r1, r2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad register accepted");
  (match Isa.assemble "add r1, r2, r3\n# full line comment\n\nnop" with
  | Ok [ _; _ ] -> ()
  | Ok l -> Alcotest.failf "expected 2 instructions, got %d" (List.length l)
  | Error e -> Alcotest.fail e)

let test_parse_list () =
  let expect_ok src want =
    match Isa.parse_list src with
    | Ok l ->
      Alcotest.(check (list string)) src want (List.map Isa.to_string l)
    | Error e -> Alcotest.failf "parse_list %s failed: %s" src e
  in
  (* Semicolon separator. *)
  expect_ok "add r1, r2, r3; div r1, r2, r3"
    [ "add r1, r2, r3"; "div r1, r2, r3" ];
  (* Comma separator between instructions: operand commas and instruction
     commas disambiguate on mnemonics. *)
  expect_ok "add r1, r2, r3, div r1, r2, r3"
    [ "add r1, r2, r3"; "div r1, r2, r3" ];
  (* Mixed separators, extra whitespace. *)
  expect_ok "add r1, r2, r3 ;  mul r2, r1, r3, sub r3, r2, r1"
    [ "add r1, r2, r3"; "mul r2, r1, r3"; "sub r3, r2, r1" ];
  (* Memory operands survive list splitting. *)
  expect_ok "lw r1, 4(r2); sw r1, 4(r2)" [ "lw r1, 4(r2)"; "sw r1, 4(r2)" ];
  expect_ok "lw r1, 4(r2), sw r1, 4(r2)" [ "lw r1, 4(r2)"; "sw r1, 4(r2)" ];
  (* Single instruction, trailing separator, empty input. *)
  expect_ok "nop" [ "nop" ];
  expect_ok "add r1, r2, r3;" [ "add r1, r2, r3" ];
  expect_ok "" [];
  expect_ok "  ;  " [];
  (* Errors still propagate. *)
  (match Isa.parse_list "add r1, r2, r3; frobnicate r1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown mnemonic accepted");
  match Isa.parse_list "add r1, r2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong arity accepted"

(* Golden-model semantics spot checks. *)
let exec src ?regs () =
  let st = Golden.create ?regs () in
  let program = match Isa.assemble src with Ok p -> p | Error e -> failwith e in
  Golden.run st ~program ~max_steps:(List.length program + 2);
  st

let bv8 = Bitvec.of_int ~width:8

let test_golden_alu () =
  let st = exec "addi r1, r0, 200\naddi r2, r0, 100\nadd r3, r1, r2" () in
  Alcotest.(check int) "wrapping add" 44 (Bitvec.to_int (Golden.reg st 3));
  let st = exec "addi r1, r0, 5\nsll r2, r1, r1" () in
  (* shift amount = r1 & 7 = 5 *)
  Alcotest.(check int) "sll" 0xA0 (Bitvec.to_int (Golden.reg st 2))

let test_golden_mem () =
  let st = exec "addi r1, r0, 77\nsw r1, 3(r0)\nlw r2, 3(r0)\nlb r3, 3(r0)" () in
  Alcotest.(check int) "lw" 77 (Bitvec.to_int (Golden.reg st 2));
  (* 77 = 0x4D; low nibble 0xD sign-extends to 0xFD *)
  Alcotest.(check int) "lb sign-extends nibble" 0xFD (Bitvec.to_int (Golden.reg st 3))

let test_golden_control () =
  let st = exec "addi r1, r0, 1\nbeq r1, r1, 8\naddi r2, r0, 9\naddi r3, r0, 5" () in
  (* branch from pc1: target 4+8=12 -> pc3; skips pc2 *)
  Alcotest.(check int) "skipped" 0 (Bitvec.to_int (Golden.reg st 2));
  Alcotest.(check int) "landed" 5 (Bitvec.to_int (Golden.reg st 3));
  (* Misaligned JALR -> exception -> redirect to vector 0. *)
  let st = Golden.create ~regs:[| Bitvec.zero 8; bv8 6; bv8 0; bv8 0 |] () in
  Golden.step st (Isa.make ~rd:2 ~rs1:1 Isa.JALR);
  Alcotest.(check int) "misaligned jalr redirects to 0" 0 st.Golden.pc

let test_golden_r0 () =
  let st = exec "addi r0, r0, 55\nadd r1, r0, r0" () in
  Alcotest.(check int) "r0 stays zero" 0 (Bitvec.to_int (Golden.reg st 0));
  Alcotest.(check int) "reads as zero" 0 (Bitvec.to_int (Golden.reg st 1))

let qcheck_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"random encode/decode roundtrip"
       (QCheck.make
          QCheck.Gen.(
            int_range 0 31 >>= fun op ->
            int_range 0 3 >>= fun rd ->
            int_range 0 3 >>= fun rs1 ->
            int_range 0 3 >>= fun rs2 ->
            int_range 0 255 >>= fun imm -> return (op, rd, rs1, rs2, imm)))
       (fun (op, rd, rs1, rs2, imm) ->
         let i = Isa.make ~rd ~rs1 ~rs2 ~imm (Isa.opcode_of_int op) in
         Isa.decode (Isa.encode i) = i))

let suite =
  ( "isa",
    [
      Alcotest.test_case "opcode roundtrip" `Quick test_roundtrip_all_opcodes;
      Alcotest.test_case "decode is total" `Quick test_decode_total;
      Alcotest.test_case "field placement" `Quick test_fields;
      Alcotest.test_case "classes and usage" `Quick test_classes;
      Alcotest.test_case "assembler" `Quick test_assembler;
      Alcotest.test_case "parse_list separators" `Quick test_parse_list;
      Alcotest.test_case "golden alu" `Quick test_golden_alu;
      Alcotest.test_case "golden memory" `Quick test_golden_mem;
      Alcotest.test_case "golden control flow" `Quick test_golden_control;
      Alcotest.test_case "golden r0" `Quick test_golden_r0;
      qcheck_roundtrip;
    ] )
