(* Yosys-JSON frontend tests: JSON parser round trips, golden parse of the
   committed example (digest-identical to the built-in elaboration),
   per-class rejection of unsupported constructs with messages naming the
   cell type and instance, sidecar resolution errors, qcheck round-trip
   over fuzz-generated pipelines, and the CLI exit-2 agreement between
   mupath/synthlc/lint on unknown design names. *)

module J = Frontend.Json
module Y = Frontend.Yosys
module N = Hdl.Netlist
module D = Lint.Diagnostic

let example_json = "../examples/ibex_lite.json"
let example_meta = "../examples/ibex_lite.meta.json"
let cli = "../bin/synthlc_cli.exe"

(* --- Json --------------------------------------------------------------- *)

let test_json_basics () =
  let j = J.parse_string {| {"a": [1, -2, 3], "b": "x\nyA", "c": {"d": true, "e": null}, "f": 2.5} |} in
  Alcotest.(check (option int)) "int" (Some 1)
    (Option.bind (J.member "a" j) (fun l ->
         match l with J.List (x :: _) -> J.to_int x | _ -> None));
  Alcotest.(check (option string)) "escapes" (Some "x\nyA")
    (Option.bind (J.member "b" j) J.to_str);
  (* print -> parse is the identity *)
  let j2 = J.parse_string (J.to_string j) in
  Alcotest.(check bool) "print/parse round trip" true (j = j2);
  let j3 = J.parse_string (J.to_string ~compact:true j) in
  Alcotest.(check bool) "compact print/parse round trip" true (j = j3)

let test_json_errors () =
  List.iter
    (fun src ->
      match J.parse_string src with
      | exception J.Parse_error _ -> ()
      | _ -> Alcotest.failf "parsed malformed input %S" src)
    [ "{"; "[1,]"; "{\"a\" 1}"; "\"unterminated"; "01"; "nul"; "{} trailing" ]

(* --- golden example ------------------------------------------------------ *)

let test_golden_example () =
  let { Y.nl; warnings } = Y.import_file example_json in
  Alcotest.(check (list string)) "no warnings" []
    (List.map (fun (d : D.t) -> d.D.message) warnings);
  let builtin = Designs.Ibex.build () in
  Alcotest.(check string) "digest identical to built-in ibex_lite"
    (N.digest builtin.Designs.Meta.nl)
    (N.digest nl);
  let sc = Frontend.Sidecar.resolve_file nl example_meta in
  Alcotest.(check int) "iuv_pc" 2 sc.Frontend.Sidecar.iuv_pc;
  Alcotest.(check bool) "stimulus ibex" true
    (sc.Frontend.Sidecar.stimulus = Frontend.Sidecar.S_ibex);
  let meta = sc.Frontend.Sidecar.meta in
  Alcotest.(check int) "uFSM count"
    (List.length builtin.Designs.Meta.ufsms)
    (List.length meta.Designs.Meta.ufsms);
  Alcotest.(check int) "ARF size"
    (List.length builtin.Designs.Meta.arf)
    (List.length meta.Designs.Meta.arf)

let test_example_admission () =
  let d =
    Frontend.Admission.load ~json_path:example_json ~meta_path:example_meta ()
  in
  let errors =
    List.filter
      (fun (x : D.t) -> x.D.severity = D.Error)
      d.Frontend.Admission.report.D.diags
  in
  Alcotest.(check int) "no admission errors" 0 (List.length errors)

(* --- rejection per unsupported-cell class -------------------------------- *)

let wrap_module cells =
  Printf.sprintf
    {|{ "modules": { "m": { "attributes": {"top": 1},
        "ports": {
          "clk": {"direction": "input", "bits": [2]},
          "a": {"direction": "input", "bits": [3]},
          "q": {"direction": "output", "bits": [4]}
        },
        "cells": { %s },
        "netnames": {} } } }|}
    cells

let reject_msgs src =
  match Y.import_string ~design:"t" src with
  | _ -> Alcotest.fail "import unexpectedly admitted the design"
  | exception Frontend.Diag.Rejected r ->
    List.map (fun (d : D.t) -> (d.D.code, d.D.message)) r.D.diags

let check_rejects ~what ~code ~needles cells =
  let msgs = reject_msgs (wrap_module cells) in
  let all = String.concat "\n" (List.map snd msgs) in
  Alcotest.(check bool)
    (what ^ ": carries code " ^ code)
    true
    (List.exists (fun (c, _) -> c = code) msgs);
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and al = String.length all in
        let rec go i = i + nl <= al && (String.sub all i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: message mentions %S" what needle)
        true found)
    needles

let test_reject_memory () =
  check_rejects ~what:"memory" ~code:"F501"
    ~needles:[ "$mem_v2"; "mem0"; "memory" ]
    {|"mem0": {"type": "$mem_v2", "parameters": {}, "connections": {"RD_DATA": [4]}}|}

let test_reject_latch () =
  check_rejects ~what:"latch" ~code:"F501"
    ~needles:[ "$dlatch"; "lat1"; "latch" ]
    {|"lat1": {"type": "$dlatch", "parameters": {},
       "connections": {"Q": [4], "D": [3], "EN": [3]}}|}

let test_reject_assert () =
  check_rejects ~what:"$assert" ~code:"F501"
    ~needles:[ "$assert"; "chk"; "formal" ]
    {|"chk": {"type": "$assert", "parameters": {}, "connections": {"A": [3], "EN": [3]}},
      "buf": {"type": "$pos", "parameters": {}, "connections": {"A": [3], "Y": [4]}}|}

let test_reject_unknown () =
  check_rejects ~what:"unknown cell" ~code:"F501"
    ~needles:[ "$frobnicate"; "u7" ]
    {|"u7": {"type": "$frobnicate", "parameters": {}, "connections": {"Y": [4], "A": [3]}}|}

let test_reject_negative_clock () =
  check_rejects ~what:"negative clock polarity" ~code:"F503"
    ~needles:[ "$dff"; "r0"; "polarity" ]
    {|"r0": {"type": "$dff", "parameters": {"WIDTH": 1, "CLK_POLARITY": 0},
       "connections": {"CLK": [2], "D": [3], "Q": [4]}}|}

let test_rejections_collected () =
  (* Every unsupported cell is named before rejection — not just the
     first. *)
  let msgs =
    reject_msgs
      (wrap_module
         {|"mem0": {"type": "$mem_v2", "parameters": {}, "connections": {"RD_DATA": [4]}},
           "lat1": {"type": "$dlatch", "parameters": {}, "connections": {"Q": [5], "D": [3], "EN": [3]}},
           "chk": {"type": "$assert", "parameters": {}, "connections": {"A": [3], "EN": [3]}}|})
  in
  Alcotest.(check int) "all three cells reported" 3
    (List.length (List.filter (fun (c, _) -> c = "F501") msgs))

let test_reject_malformed () =
  let msgs =
    match Y.import_string ~design:"t" "{ \"modules\": " with
    | _ -> Alcotest.fail "parsed truncated JSON"
    | exception Frontend.Diag.Rejected r ->
      List.map (fun (d : D.t) -> d.D.code) r.D.diags
  in
  Alcotest.(check (list string)) "truncated JSON is F502" [ "F502" ] msgs

let test_xz_zeroed_with_warning () =
  let src =
    wrap_module
      {|"inv": {"type": "$not", "parameters": {"A_WIDTH": 2, "Y_WIDTH": 1},
         "connections": {"A": ["x", "0"], "Y": [4]}}|}
  in
  let { Y.nl = _; warnings } = Y.import_string ~design:"t" src in
  Alcotest.(check bool) "F504 warning emitted" true
    (List.exists (fun (d : D.t) -> d.D.code = "F504") warnings)

(* --- sidecar errors ------------------------------------------------------ *)

let import_example () = (Y.import_file example_json).Y.nl

let test_sidecar_unknown_signal () =
  let nl = import_example () in
  let sidecar =
    J.parse_string
      {|{"design": "ibex_lite", "iuv_pc": 2,
         "ifrs": [{"valid": "no_such_signal", "pc": "if_pc", "word": "if_i"}],
         "operand_stage": {"valid": "operand_stage_valid", "pc": "ex_pc"},
         "commit": "commit", "commit_pc": "commit_pc", "flush": "flush"}|}
  in
  match Frontend.Sidecar.resolve nl sidecar with
  | _ -> Alcotest.fail "resolved a sidecar naming an unknown signal"
  | exception Frontend.Diag.Rejected r ->
    let d =
      List.find (fun (d : D.t) -> d.D.code = "F510") r.D.diags
    in
    Alcotest.(check (option string)) "names the missing signal"
      (Some "no_such_signal") d.D.signal_name

let test_sidecar_malformed () =
  let nl = import_example () in
  match Frontend.Sidecar.resolve nl (J.parse_string {|{"iuv_pc": "two"}|}) with
  | _ -> Alcotest.fail "resolved a malformed sidecar"
  | exception Frontend.Diag.Rejected r ->
    Alcotest.(check bool) "F511 diagnostics" true
      (List.for_all (fun (d : D.t) -> d.D.code = "F511") r.D.diags
      && r.D.diags <> [])

(* --- round trip ---------------------------------------------------------- *)

let roundtrip_ok meta =
  let nl = meta.Designs.Meta.nl in
  let d0 = N.digest nl in
  let { Y.nl = nl'; warnings } =
    Y.import_string ~design:"rt" (Y.export_string nl)
  in
  warnings = [] && String.equal d0 (N.digest nl')

let test_roundtrip_builtins () =
  List.iter
    (fun (name, meta) ->
      Alcotest.(check bool) (name ^ " round-trips digest-identically") true
        (roundtrip_ok meta))
    [
      ("cva6_lite", Designs.Core.build Designs.Core.baseline);
      ("ibex_lite", Designs.Ibex.build ());
      ("gated", Designs.Gated.build ());
      ("cva6_cache", Designs.Cache.build ());
    ]

let qcheck_roundtrip =
  QCheck.Test.make ~count:12 ~name:"fuzz-generated designs round-trip"
    QCheck.(map (fun i -> i land 0xff) int)
    (fun i ->
      let cfg = Fuzz.Gen.config_for ~seed:5 i in
      roundtrip_ok (Fuzz.Gen.build cfg))

(* --- CLI contracts ------------------------------------------------------- *)

let exit_of cmdline =
  Sys.command (Printf.sprintf "%s >/dev/null 2>&1" cmdline)

let test_cli_unknown_design_agreement () =
  List.iter
    (fun sub ->
      Alcotest.(check int)
        (sub ^ " exits 2 on an unknown design")
        2
        (exit_of (Printf.sprintf "%s %s" cli sub)))
    [
      "mupath -d no_such_design -i 'add r1, r2, r3'";
      "synthlc -d no_such_design";
      "lint no_such_design";
    ]

let test_cli_import_contract () =
  Alcotest.(check int) "import of the committed example exits 0" 0
    (exit_of (Printf.sprintf "%s import %s --meta %s" cli example_json example_meta));
  Alcotest.(check int) "import of a missing file exits 2" 2
    (exit_of (Printf.sprintf "%s import no_such_file.json" cli))

let suite =
  ( "frontend",
    [
      Alcotest.test_case "json parse/print basics" `Quick test_json_basics;
      Alcotest.test_case "json parse errors" `Quick test_json_errors;
      Alcotest.test_case "golden parse of committed example" `Quick
        test_golden_example;
      Alcotest.test_case "committed example passes admission" `Quick
        test_example_admission;
      Alcotest.test_case "reject memory cells by name" `Quick
        test_reject_memory;
      Alcotest.test_case "reject latches by name" `Quick test_reject_latch;
      Alcotest.test_case "reject $assert by name" `Quick test_reject_assert;
      Alcotest.test_case "reject unknown cells by name" `Quick
        test_reject_unknown;
      Alcotest.test_case "reject negative clock polarity" `Quick
        test_reject_negative_clock;
      Alcotest.test_case "all unsupported cells collected" `Quick
        test_rejections_collected;
      Alcotest.test_case "malformed JSON is F502" `Quick test_reject_malformed;
      Alcotest.test_case "x/z bits zeroed with F504 warning" `Quick
        test_xz_zeroed_with_warning;
      Alcotest.test_case "sidecar unknown signal is F510" `Quick
        test_sidecar_unknown_signal;
      Alcotest.test_case "malformed sidecar is F511" `Quick
        test_sidecar_malformed;
      Alcotest.test_case "built-ins round-trip digest-identically" `Quick
        test_roundtrip_builtins;
      QCheck_alcotest.to_alcotest qcheck_roundtrip;
      Alcotest.test_case "mupath/synthlc/lint agree on exit 2" `Quick
        test_cli_unknown_design_agreement;
      Alcotest.test_case "import CLI exit contract" `Quick
        test_cli_import_contract;
    ] )
