(* IFT instrumentation tests on small circuits, exercising every
   propagation rule: precise mux/logic behaviour, conservative arithmetic
   over-taint (the §VII-B1 false-positive source), architectural blocking,
   injection gating, and the sticky-taint flush of Assumption 3. *)

module N = Hdl.Netlist

(* Each test builds: inj input gating taint injection into a source
   register; a combinational function of (src, other-input); a destination
   register capturing the result.  After instrumentation we simulate and
   probe taints. *)

type rig = {
  nl : N.t;
  inj : N.signal;
  data : N.signal;
  other : N.signal;
  src : N.signal;
  dst : N.signal;
  ift : Ift.t;
  sim : Sim.t;
}

let mk ?(blocked_dst = false) ?(flush_input = false) f =
  let nl = N.create "rig" in
  let inj = N.input nl "inj" 1 in
  let data = N.input nl "data" 8 in
  let other = N.input nl "other" 8 in
  let flush = if flush_input then Some (N.input nl "flush" 1) else None in
  let src = N.reg nl ~name:"src" ~init:(N.Init_value (Bitvec.zero 8)) ~width:8 () in
  N.connect_reg nl src data;
  let dst = N.reg nl ~name:"dst" ~init:(N.Init_value (Bitvec.zero 8)) ~width:8 () in
  N.connect_reg nl dst (f nl src other);
  let blocked = if blocked_dst then [ dst ] else [] in
  let ift = Ift.instrument ~inject:[ (src, inj) ] ~blocked ?flush nl in
  let sim = Sim.create nl in
  ({ nl; inj; data; other; src; dst; ift; sim }, flush)

let step ?(inj = false) ?(data = 0) ?(other = 0) ?(flush = false) (r, fl) =
  Sim.poke r.sim r.inj (Bitvec.of_bool inj);
  Sim.poke r.sim r.data (Bitvec.of_int ~width:8 data);
  Sim.poke r.sim r.other (Bitvec.of_int ~width:8 other);
  (match fl with
  | Some f -> Sim.poke r.sim f (Bitvec.of_bool flush)
  | None -> ());
  Sim.eval r.sim;
  Sim.step r.sim

let taint_of (r, _) s =
  Sim.eval r.sim;
  Bitvec.to_int (Sim.peek r.sim (Ift.taint_of r.ift s))

let test_xor_propagates () =
  let rig = mk (fun nl a b -> N.op2 nl N.Xor a b) in
  step ~inj:true ~data:0x0F rig;
  (* src now tainted (all ones) *)
  Alcotest.(check int) "src fully tainted" 0xFF (taint_of rig (fst rig).src);
  step ~other:0x55 rig;
  Alcotest.(check int) "xor passes taint per bit" 0xFF (taint_of rig (fst rig).dst);
  (* without injection, taint drains *)
  step rig;
  step rig;
  Alcotest.(check int) "taint drains" 0 (taint_of rig (fst rig).dst)

let test_and_precision () =
  let rig = mk (fun nl a b -> N.op2 nl N.And a b) in
  step ~inj:true rig;
  (* other = 0x0F: only low bits of the AND can be influenced by tainted a. *)
  step ~other:0x0F rig;
  Alcotest.(check int) "and masks taint" 0x0F (taint_of rig (fst rig).dst)

let test_arithmetic_conservative () =
  let rig = mk (fun nl a b -> N.op2 nl N.Add a b) in
  step ~inj:true rig;
  step ~other:0x01 rig;
  (* Conservative rule: any tainted input bit taints the whole sum. *)
  Alcotest.(check int) "add taints whole word" 0xFF (taint_of rig (fst rig).dst)

let test_mux_select_taint () =
  (* dst = other selected... build mux with sel from src bit: tainted select
     with differing branches taints output. *)
  let rig =
    mk (fun nl a b ->
        let sel = N.extract nl ~hi:0 ~lo:0 a in
        N.mux nl ~sel ~on_true:b ~on_false:(N.not_ nl b))
  in
  step ~inj:true rig;
  step ~other:0x00 rig;
  (* branches are b and ~b: all bits differ, select tainted -> all tainted *)
  Alcotest.(check int) "tainted select" 0xFF (taint_of rig (fst rig).dst)

let test_mux_equal_branches () =
  (* If both branches are the same signal, a tainted select leaks nothing. *)
  let rig =
    mk (fun nl a b ->
        let sel = N.extract nl ~hi:0 ~lo:0 a in
        N.mux nl ~sel ~on_true:b ~on_false:b)
  in
  step ~inj:true rig;
  step ~other:0x3C rig;
  Alcotest.(check int) "no leak through equal branches" 0 (taint_of rig (fst rig).dst)

let test_blocked_register () =
  let rig = mk ~blocked_dst:true (fun nl a b -> N.op2 nl N.Xor a b) in
  step ~inj:true rig;
  step rig;
  Alcotest.(check int) "blocked register never tainted" 0 (taint_of rig (fst rig).dst)

let test_flush_clears_transient () =
  let rig = mk ~flush_input:true (fun nl a b -> N.op2 nl N.Xor a b) in
  step ~inj:true rig;
  step rig;
  Alcotest.(check bool) "dst tainted before flush" true (taint_of rig (fst rig).dst > 0);
  (* keep re-injecting so src stays tainted; flush clears non-persistent dst *)
  step ~inj:true ~flush:true rig;
  step ~flush:true rig;
  step ~flush:true rig;
  Alcotest.(check int) "flush clears taint" 0 (taint_of rig (fst rig).dst)

let test_monotonic_in_inputs () =
  (* qcheck: for a random combinational function shape (x ^ (a & b)), if no
     injection ever happens, no taint ever appears. *)
  let rig =
    mk (fun nl a b -> N.op2 nl N.Xor (N.op2 nl N.And a b) (N.op2 nl N.Or a b))
  in
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 50 do
    step ~data:(Random.State.int rng 256) ~other:(Random.State.int rng 256) rig
  done;
  Alcotest.(check int) "no spontaneous taint (src)" 0 (taint_of rig (fst rig).src);
  Alcotest.(check int) "no spontaneous taint (dst)" 0 (taint_of rig (fst rig).dst)

(* Soundness property: IFT must over-approximate influence.  Build a
   random combinational function of a register; run two simulations that
   agree everywhere except the injected register's value; any output bit
   that differs must be tainted in the instrumented run. *)
let test_soundness_overapproximation () =
  let rng = Random.State.make [| 1234 |] in
  for trial = 1 to 30 do
    let k1 = Random.State.int rng 256 and k2 = Random.State.int rng 256 in
    let shape = Random.State.int rng 5 in
    let f nl a b =
      let open N in
      match shape with
      | 0 -> op2 nl Xor (op2 nl And a (const nl (Bitvec.of_int ~width:8 k1))) b
      | 1 -> op2 nl Add a (op2 nl Or b (const nl (Bitvec.of_int ~width:8 k2)))
      | 2 ->
        let sel = extract nl ~hi:0 ~lo:0 (op2 nl And a b) in
        mux nl ~sel ~on_true:(op2 nl Sub a b) ~on_false:(op2 nl Xor a b)
      | 3 -> concat nl [ extract nl ~hi:3 ~lo:0 a; extract nl ~hi:7 ~lo:4 b ]
      | _ -> op2 nl Mul (not_ nl a) b
    in
    let rig1 = mk f in
    let rig2 = mk f in
    let d1 = Random.State.int rng 256 in
    let d2 = Random.State.int rng 256 in
    let other = Random.State.int rng 256 in
    (* Cycle 1: inject + load differing data into src. *)
    step ~inj:true ~data:d1 ~other rig1;
    step ~inj:true ~data:d2 ~other rig2;
    (* Cycle 2: compute f(src, other) into dst. *)
    step ~other rig1;
    step ~other rig2;
    Sim.eval (fst rig1).sim;
    Sim.eval (fst rig2).sim;
    let v1 = Bitvec.to_int (Sim.peek (fst rig1).sim (fst rig1).dst) in
    let v2 = Bitvec.to_int (Sim.peek (fst rig2).sim (fst rig2).dst) in
    let t1 = taint_of rig1 (fst rig1).dst in
    let diff = v1 lxor v2 in
    if diff land lnot t1 <> 0 then
      Alcotest.failf
        "trial %d (shape %d): value diff %02x escapes taint %02x" trial shape
        diff t1
  done

(* An enabled register must be rejected up front, naming the offender — the
   shadow next-state logic would silently drop taint on every hold cycle. *)
let test_enable_rejected () =
  let nl = N.create "en" in
  let en = N.input nl "en" 1 in
  let d = N.input nl "d" 4 in
  let r =
    N.reg nl ~enable:en ~name:"held" ~init:(N.Init_value (Bitvec.zero 4))
      ~width:4 ()
  in
  N.connect_reg nl r d;
  match Ift.instrument nl with
  | exception Invalid_argument msg ->
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "message names the register" true (contains "held")
  | _ -> Alcotest.fail "expected Invalid_argument for enabled register"

let suite =
  ( "ift",
    [
      Alcotest.test_case "xor propagates per bit" `Quick test_xor_propagates;
      Alcotest.test_case "and precision" `Quick test_and_precision;
      Alcotest.test_case "arithmetic conservatism" `Quick test_arithmetic_conservative;
      Alcotest.test_case "tainted mux select" `Quick test_mux_select_taint;
      Alcotest.test_case "equal mux branches leak nothing" `Quick test_mux_equal_branches;
      Alcotest.test_case "architectural blocking" `Quick test_blocked_register;
      Alcotest.test_case "sticky-taint flush" `Quick test_flush_clears_transient;
      Alcotest.test_case "no spontaneous taint" `Quick test_monotonic_in_inputs;
      Alcotest.test_case "soundness over-approximation" `Quick
        test_soundness_overapproximation;
      Alcotest.test_case "enabled register rejected" `Quick test_enable_rejected;
    ] )
