(* Netlist IR and DSL tests: construction invariants, validation errors,
   topological ordering, combinational-cone analysis, and a differential
   qcheck of DSL operators against Bitvec via the simulator. *)

module N = Hdl.Netlist

let fresh name = N.create name

let test_validate_unconnected () =
  let nl = fresh "u" in
  let _r = N.reg nl ~name:"r" ~init:(N.Init_value (Bitvec.zero 4)) ~width:4 () in
  Alcotest.check_raises "unconnected reg"
    (Failure "Netlist u: unconnected register r (node 0)") (fun () -> N.validate nl);
  let nl = fresh "w" in
  let _w = N.wire nl ~name:"w0" 4 in
  Alcotest.check_raises "unconnected wire"
    (Failure "Netlist w: unconnected wire w0 (node 0)")
    (fun () -> N.validate nl)

(* The satellite bugfix: validate reports *every* problem in one Failure —
   all unconnected registers/wires and all combinational cycles, each with
   node ids and names. *)
let test_validate_reports_all () =
  let nl = fresh "multi" in
  let r = N.reg nl ~name:"r0" ~init:(N.Init_value (Bitvec.zero 4)) ~width:4 () in
  let _w = N.wire nl ~name:"dangling" 2 in
  let c0 = N.wire nl ~name:"loop_a" 1 in
  N.connect_wire nl c0 (N.not_ nl c0);
  let c1 = N.wire nl 1 in
  N.connect_wire nl c1 c1;
  ignore r;
  let msg =
    try
      N.validate nl;
      Alcotest.fail "expected validate to raise"
    with Failure m -> m
  in
  let contains sub =
    let rec go i =
      i + String.length sub <= String.length msg
      && (String.sub msg i (String.length sub) = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "counts problems" true (contains "4 problems");
  Alcotest.(check bool) "reg by name+id" true
    (contains "unconnected register r0 (node 0)");
  Alcotest.(check bool) "wire by name+id" true
    (contains "unconnected wire dangling (node 1)");
  Alcotest.(check bool) "named cycle" true
    (contains "combinational cycle through loop_a (node 2)");
  Alcotest.(check bool) "anonymous self-loop" true
    (contains (Printf.sprintf "combinational cycle through node %d" c1))

let test_comb_cycle_detected () =
  let nl = fresh "c" in
  let w = N.wire nl 1 in
  let x = N.not_ nl w in
  N.connect_wire nl w x;
  Alcotest.(check bool) "raises" true
    (try
       N.validate nl;
       false
     with Failure _ -> true)

let test_reg_breaks_cycle () =
  let nl = fresh "r" in
  let r = N.reg nl ~name:"r" ~init:(N.Init_value (Bitvec.zero 1)) ~width:1 () in
  N.connect_reg nl r (N.not_ nl r);
  N.validate nl (* a register in the loop is fine *)

let test_width_checks () =
  let nl = fresh "wd" in
  let a = N.input nl "a" 4 and b = N.input nl "b" 8 in
  Alcotest.(check bool) "op2 width mismatch" true
    (try
       ignore (N.op2 nl N.Add a b);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "extract bad range" true
    (try
       ignore (N.extract nl ~hi:4 ~lo:0 a);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "mux needs 1-bit sel" true
    (try
       ignore (N.mux nl ~sel:b ~on_true:a ~on_false:a);
       false
     with Invalid_argument _ -> true)

(* Satellite audit: every construction/connection error names the offending
   node (name when set, id always), so a failure deep inside elaboration or
   import points at the node, not just the operation. *)
let test_error_messages_name_nodes () =
  let nl = fresh "e" in
  let a = N.input nl "a" 4 and b = N.input nl "b" 8 in
  let expect_msg what f needles =
    let msg =
      try
        f ();
        Alcotest.failf "%s: expected an exception" what
      with
      | Failure m | Invalid_argument m -> m
    in
    let contains sub =
      let rec go i =
        i + String.length sub <= String.length msg
        && (String.sub msg i (String.length sub) = sub || go (i + 1))
      in
      go 0
    in
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "%s mentions %S (got %S)" what needle msg)
          true (contains needle))
      needles
  in
  expect_msg "op2 mismatch"
    (fun () -> ignore (N.op2 nl N.Add a b))
    [ "a (node 0)"; "b (node 1)"; "4"; "8" ];
  expect_msg "mux selector"
    (fun () -> ignore (N.mux nl ~sel:b ~on_true:a ~on_false:a))
    [ "b (node 1)"; "1 bit" ];
  expect_msg "extract range"
    (fun () -> ignore (N.extract nl ~hi:4 ~lo:0 a))
    [ "a (node 0)"; "[4:0]" ];
  expect_msg "bad signal"
    (fun () -> ignore (N.node nl 99))
    [ "99"; "e" ];
  let r = N.reg nl ~name:"r" ~init:N.Init_symbolic ~width:4 () in
  expect_msg "connect_reg width"
    (fun () -> N.connect_reg nl r b)
    [ "r (node 2)"; "b (node 1)" ];
  expect_msg "connect_reg not a register"
    (fun () -> N.connect_reg nl a b)
    [ "a (node 0)"; "not a register" ];
  N.connect_reg nl r a;
  expect_msg "connect_reg already connected"
    (fun () -> N.connect_reg nl r a)
    [ "r (node 2)"; "already connected" ];
  expect_msg "connect_enable width"
    (fun () -> N.connect_enable nl r b)
    [ "r (node 2)"; "b (node 1)" ];
  let w = N.wire nl ~name:"w" 4 in
  expect_msg "connect_wire width"
    (fun () -> N.connect_wire nl w b)
    [ "w (node 3)"; "b (node 1)" ];
  expect_msg "duplicate name"
    (fun () -> ignore (N.input nl "a" 1))
    [ "a (node 0)"; "duplicate" ];
  expect_msg "reg init width"
    (fun () ->
      ignore
        (N.reg nl ~name:"bad" ~init:(N.Init_value (Bitvec.zero 2)) ~width:4 ()))
    [ "bad"; "2"; "4" ]

let test_names_unique () =
  let nl = fresh "n" in
  let _ = N.input nl "x" 1 in
  Alcotest.(check bool) "duplicate name" true
    (try
       ignore (N.input nl "x" 1);
       false
     with Failure _ -> true);
  Alcotest.(check bool) "find_named" true (N.find_named nl "x" <> None)

let test_comb_order () =
  let nl = fresh "topo" in
  let a = N.input nl "a" 4 in
  let b = N.not_ nl a in
  let c = N.op2 nl N.Add a b in
  let order = N.comb_order nl in
  let pos x = Option.get (Array.find_index (fun s -> s = x) order) in
  Alcotest.(check bool) "a before b" true (pos a < pos b);
  Alcotest.(check bool) "b before c" true (pos b < pos c)

let test_comb_cone () =
  let nl = fresh "cone" in
  let a = N.input nl "a" 4 in
  let r = N.reg nl ~name:"r" ~init:(N.Init_value (Bitvec.zero 4)) ~width:4 () in
  let x = N.op2 nl N.Xor a r in
  N.connect_reg nl r x;
  let unrelated = N.input nl "u" 4 in
  let cone = N.comb_cone nl [ x ] in
  Alcotest.(check bool) "contains a" true (Hashtbl.mem cone a);
  Alcotest.(check bool) "contains r (stops at reg)" true (Hashtbl.mem cone r);
  Alcotest.(check bool) "excludes unrelated" false (Hashtbl.mem cone unrelated)

(* Differential: one circuit instantiating every DSL operator, simulated on
   random inputs and compared against the Bitvec reference semantics. *)
let test_dsl_vs_bitvec () =
  let w = 8 in
  let nl = N.create "alu" in
  let module D = Hdl.Dsl.Make (struct
    let nl = nl
  end) in
  let open D in
  let a = input "a" w and b = input "b" w in
  let outs =
    [
      ("and", a &: b, fun x y -> Bitvec.logand x y);
      ("or", a |: b, fun x y -> Bitvec.logor x y);
      ("xor", a ^: b, fun x y -> Bitvec.logxor x y);
      ("not", ~:a, fun x _ -> Bitvec.lognot x);
      ("add", a +: b, fun x y -> Bitvec.add x y);
      ("sub", a -: b, fun x y -> Bitvec.sub x y);
      ("mul", a *: b, fun x y -> Bitvec.mul x y);
      ("eq", zero_extend (a ==: b) w, fun x y ->
        Bitvec.of_int ~width:w (if Bitvec.equal x y then 1 else 0));
      ("ult", zero_extend (a <: b) w, fun x y ->
        Bitvec.of_int ~width:w (if Bitvec.ult x y then 1 else 0));
      ("slt", zero_extend (a <+ b) w, fun x y ->
        Bitvec.of_int ~width:w (if Bitvec.slt x y then 1 else 0));
      ("mux", mux (a <: b) a b, fun x y -> if Bitvec.ult x y then x else y);
      ("sel", zero_extend (select a 5 2) w, fun x _ ->
        Bitvec.zero_extend (Bitvec.extract x ~hi:5 ~lo:2) w);
      ("cat", concat [ select a 3 0; select b 7 4 ], fun x y ->
        Bitvec.concat (Bitvec.extract x ~hi:3 ~lo:0) (Bitvec.extract y ~hi:7 ~lo:4));
      ("sext", sign_extend (select a 3 0) w, fun x _ ->
        Bitvec.sign_extend (Bitvec.extract x ~hi:3 ~lo:0) w);
      ("prio", priority_mux [ (a ==: b, a); (a <: b, b) ] (zero w), fun x y ->
        if Bitvec.equal x y then x else if Bitvec.ult x y then y else Bitvec.zero w);
      ("bmux", binary_mux (select a 1 0) [ a; b; ~:a; ~:b ], fun x y ->
        match Bitvec.to_int (Bitvec.extract x ~hi:1 ~lo:0) with
        | 0 -> x
        | 1 -> y
        | 2 -> Bitvec.lognot x
        | _ -> Bitvec.lognot y);
    ]
  in
  let named =
    List.map (fun (n, s, f) ->
        let wr = wire ~name:("out_" ^ n) (width s) in
        wr <== s;
        (n, wr, f))
      outs
  in
  let sim = Sim.create nl in
  let rng = Random.State.make [| 77 |] in
  for _ = 1 to 300 do
    let va = Bitvec.random rng w and vb = Bitvec.random rng w in
    Sim.poke sim a va;
    Sim.poke sim b vb;
    Sim.eval sim;
    List.iter
      (fun (n, s, f) ->
        let got = Sim.peek sim s and want = f va vb in
        if not (Bitvec.equal got want) then
          Alcotest.failf "%s: %s op %s -> %s, want %s" n
            (Bitvec.to_hex_string va) (Bitvec.to_hex_string vb)
            (Bitvec.to_hex_string got) (Bitvec.to_hex_string want))
      named
  done

let suite =
  ( "hdl",
    [
      Alcotest.test_case "unconnected detection" `Quick test_validate_unconnected;
      Alcotest.test_case "validate reports all problems" `Quick
        test_validate_reports_all;
      Alcotest.test_case "combinational cycle" `Quick test_comb_cycle_detected;
      Alcotest.test_case "register breaks cycle" `Quick test_reg_breaks_cycle;
      Alcotest.test_case "width checks" `Quick test_width_checks;
      Alcotest.test_case "error messages name nodes" `Quick
        test_error_messages_name_nodes;
      Alcotest.test_case "unique names" `Quick test_names_unique;
      Alcotest.test_case "topological order" `Quick test_comb_order;
      Alcotest.test_case "combinational cone" `Quick test_comb_cone;
      Alcotest.test_case "dsl vs bitvec semantics" `Quick test_dsl_vs_bitvec;
    ] )
