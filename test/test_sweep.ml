(* Sweep-integration tests: checker tri-mode digest identity on the toy
   DUV (off / on / audit produce bit-identical synthesis results, with the
   audit's divergence tripwire armed throughout), admission of the
   committed gate-level ibex_lite example plus its >=20% merge ratio and
   cross-variant semantic digest, and the semantic cache namespace — a
   cold gate-level fill of the verdict store warms the word-level
   original's run with zero misses. *)

module N = Hdl.Netlist
module E = Hdl.Equiv
module C = Mc.Checker
module Meta = Designs.Meta

let gl_json = "../examples/ibex_lite_gl.json"
let gl_meta = "../examples/ibex_lite_gl.meta.json"

(* Admission failure messages beat [Rejected _] in a test log. *)
let load_or_fail ?lint ~json_path ~meta_path () =
  try Frontend.Admission.load ?lint ~json_path ~meta_path () with
  | Frontend.Diag.Rejected r ->
    Alcotest.failf "admission rejected: %s"
      (String.concat "; "
         (List.filter_map
            (fun (x : Lint.Diagnostic.t) ->
              if x.Lint.Diagnostic.severity = Lint.Diagnostic.Error then
                Some x.Lint.Diagnostic.message
              else None)
            r.Lint.Diagnostic.diags))

(* --- tri-mode digest identity on the toy DUV ----------------------------- *)

let run_toy ?cache ?(semantic_cache = false) ~sweep meta =
  Mupath.Synth.run ?cache ~semantic_cache
    ~config:{ Test_mupath.toy_config with C.sweep }
    ~meta ~iuv:(Isa.make Isa.ADD) ~iuv_pc:2 ()

let test_trimode_identity () =
  let d sweep =
    Mupath.Synth.result_digest
      (run_toy ~sweep (Test_mupath.toy_design ()))
  in
  let off = d C.Sweep_off in
  Alcotest.(check string) "sweep on reproduces the unswept digest" off
    (d C.Sweep_on);
  (* Audit re-runs every SAT-resolved cover on the unswept shadow engine
     and raises Failure on any verdict or witness divergence — a green
     check here is the cross-check itself. *)
  Alcotest.(check string) "sweep audit is silent and digest-identical" off
    (d C.Sweep_audit)

(* --- committed gate-level example ---------------------------------------- *)

let test_gl_example_admission () =
  let d = load_or_fail ~json_path:gl_json ~meta_path:gl_meta () in
  let errors =
    List.filter
      (fun (x : Lint.Diagnostic.t) -> x.Lint.Diagnostic.severity = Lint.Diagnostic.Error)
      d.Frontend.Admission.report.Lint.Diagnostic.diags
  in
  Alcotest.(check int) "no admission errors" 0 (List.length errors);
  let meta = d.Frontend.Admission.meta in
  let builtin = Designs.Ibex.build () in
  (* The gate-level variant is a different structure... *)
  Alcotest.(check bool) "structural digest differs from word-level" true
    (N.digest meta.Meta.nl <> N.digest builtin.Meta.nl);
  (* ...with identical observable behavior. *)
  Alcotest.(check string) "semantic digest matches the word-level built-in"
    (E.semantic_digest builtin.Meta.nl)
    (E.semantic_digest meta.Meta.nl)

let test_gl_example_sweep_ratio () =
  let d = load_or_fail ~lint:false ~json_path:gl_json ~meta_path:gl_meta () in
  let meta = d.Frontend.Admission.meta in
  let _red, _image, stats = E.reduce ~barriers:(Meta.signals meta) meta.Meta.nl in
  Alcotest.(check bool)
    (Printf.sprintf "gate-level sweep merges >= 20%% (%d/%d)" stats.E.merged
       stats.E.comb_nodes)
    true
    (float_of_int stats.E.merged
    >= 0.20 *. float_of_int stats.E.comb_nodes)

(* --- semantic cache namespace: cold gate-level fill, warm word-level ----- *)

let with_tmpdir f =
  let dir = Filename.temp_file "synthlc_sweep" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rec rm p =
    if Sys.is_directory p then (
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p)
    else Sys.remove p
  in
  Fun.protect (fun () -> f dir) ~finally:(fun () -> rm dir)

let test_semantic_cache_cross_variant () =
  with_tmpdir @@ fun dir ->
  (* Gate-level variant of the toy DUV, taken through the real export /
     admission path so its metadata resolves by name like any import. *)
  let meta = Test_mupath.toy_design () in
  let gl_nl, _ = Hdl.Gateify.run meta.Meta.nl in
  let json_path = Filename.concat dir "toy_gl.json" in
  let meta_path = Filename.concat dir "toy_gl.meta.json" in
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  write json_path (Frontend.Yosys.export_string gl_nl);
  write meta_path
    (Frontend.Json.to_string
       (Frontend.Sidecar.of_meta ~stimulus:Frontend.Sidecar.S_none ~iuv_pc:2
          meta));
  let d = Frontend.Admission.load ~json_path ~meta_path () in
  let cache_dir = Filename.concat dir "cache" in
  (* Cold: the gate-level variant fills the semantic-key namespace. *)
  let cold = Vcache.create ~dir:cache_dir () in
  let r_gl =
    run_toy ~cache:cold ~semantic_cache:true ~sweep:C.Sweep_on
      d.Frontend.Admission.meta
  in
  let _, _, stores = Vcache.counters cold in
  Alcotest.(check bool) "cold run stored verdicts" true (stores > 0);
  (* Warm: the word-level original replays entirely from the store. *)
  let warm = Vcache.create ~dir:cache_dir () in
  let r_wl =
    run_toy ~cache:warm ~semantic_cache:true ~sweep:C.Sweep_on
      (Test_mupath.toy_design ())
  in
  let hits, misses, _ = Vcache.counters warm in
  Alcotest.(check bool) "word-level run hits the gate-level entries" true
    (hits > 0);
  Alcotest.(check int) "no misses on the warm run" 0 misses;
  Alcotest.(check string) "cross-variant digests identical"
    (Mupath.Synth.result_digest r_gl)
    (Mupath.Synth.result_digest r_wl)

let suite =
  ( "sweep",
    [
      Alcotest.test_case "tri-mode synthesis digest identity" `Quick
        test_trimode_identity;
      Alcotest.test_case "gate-level example admits, semantic digest matches"
        `Quick test_gl_example_admission;
      Alcotest.test_case "gate-level example sweeps >= 20%" `Quick
        test_gl_example_sweep_ratio;
      Alcotest.test_case "semantic cache: cold gl fill warms word-level"
        `Quick test_semantic_cache_cross_variant;
    ] )
