(* Persistent verdict cache: disk round trips across simulated process
   restarts, first-write-wins immutability, staged-view merging, corruption
   tolerance (any malformed entry file reads as a miss), digest stability
   of the cache key's netlist component, concurrent writers, and the
   end-to-end guarantee — a warm engine run replays >= 90% of its checker
   calls from the store and produces a bit-identical report. *)

let temp_dir () =
  let f = Filename.temp_file "vcache" ".d" in
  Sys.remove f;
  f

let test_roundtrip_restart () =
  let dir = temp_dir () in
  let c = Vcache.create ~dir () in
  Alcotest.(check (option string)) "miss before add" None (Vcache.find c "k1");
  Vcache.add c "k1" "payload-one";
  Vcache.add c "k1" "a-later-write-must-lose";
  Alcotest.(check (option string)) "first write wins" (Some "payload-one")
    (Vcache.find c "k1");
  let binary = "line1\nline2\000\255binary tail" in
  Vcache.add c "k2" binary;
  (* A fresh store over the same directory simulates a process restart. *)
  let c2 = Vcache.create ~dir () in
  Alcotest.(check (option string)) "persisted across restart"
    (Some "payload-one") (Vcache.find c2 "k1");
  Alcotest.(check (option string)) "binary blob intact" (Some binary)
    (Vcache.find c2 "k2");
  let hits, misses, stores = Vcache.counters c2 in
  Alcotest.(check bool) "restart counters: 2 hits, 0 misses, 0 stores" true
    (hits = 2 && misses = 0 && stores = 0);
  Alcotest.(check int) "two entry files" 2
    (List.length (Vcache.disk_entries ~dir));
  Alcotest.(check int) "clear_dir removes both" 2 (Vcache.clear_dir ~dir);
  Alcotest.(check (option string)) "gone after clear_dir" None
    (Vcache.find (Vcache.create ~dir ()) "k1")

let test_staged_merge () =
  let root = Vcache.create () in
  Vcache.add root "a" "A";
  let s = Vcache.stage root in
  Alcotest.(check (option string)) "read falls through to parent" (Some "A")
    (Vcache.find s "a");
  Vcache.add s "b" "B";
  Alcotest.(check (option string)) "buffered write visible in the view"
    (Some "B") (Vcache.find s "b");
  Alcotest.(check (option string)) "not yet in the parent" None
    (Vcache.find root "b");
  Vcache.merge s;
  Alcotest.(check (option string)) "published by merge" (Some "B")
    (Vcache.find root "b");
  Alcotest.(check int) "merge clears the buffer" 0 (Vcache.size s)

let test_netlist_digest_stable () =
  let nl_of (m : Designs.Meta.t) = m.Designs.Meta.nl in
  let d1 = Hdl.Netlist.digest (nl_of (Designs.Ibex.build ())) in
  let d2 = Hdl.Netlist.digest (nl_of (Designs.Ibex.build ())) in
  Alcotest.(check string) "two elaborations digest identically" d1 d2;
  let core =
    Hdl.Netlist.digest (nl_of (Designs.Core.build Designs.Core.baseline))
  in
  Alcotest.(check bool) "different designs digest differently" false (d1 = core)

let overwrite path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let test_corruption_is_miss () =
  let dir = temp_dir () in
  let c = Vcache.create ~dir () in
  Vcache.add c "key" "a-reasonably-long-payload-to-truncate";
  let file, _ = List.hd (Vcache.disk_entries ~dir) in
  let path = Filename.concat dir file in
  let full = In_channel.with_open_bin path In_channel.input_all in
  let miss what =
    Alcotest.(check (option string))
      (what ^ " reads as a miss")
      None
      (Vcache.find (Vcache.create ~dir ()) "key")
  in
  overwrite path (String.sub full 0 (String.length full - 5));
  miss "truncated blob";
  overwrite path (String.sub full 0 3);
  miss "truncated header";
  overwrite path "";
  miss "empty file";
  overwrite path "not a vcache file at all";
  miss "garbage header";
  overwrite path
    (Printf.sprintf "vcache %d 3\nkey\nxyz" (Vcache.format_version + 1));
  miss "version mismatch";
  (* A corrupt file is recoverable: adding the key again re-stores it. *)
  let c2 = Vcache.create ~dir () in
  ignore (Vcache.find c2 "key");
  Vcache.add c2 "key" "replacement";
  Alcotest.(check (option string)) "re-added after corruption"
    (Some "replacement")
    (Vcache.find (Vcache.create ~dir ()) "key")

let test_concurrent_writers () =
  let dir = temp_dir () in
  let root = Vcache.create ~dir () in
  (* 4 workers write overlapping key ranges covering k0..k63: staged views
     merged in task order, so the outcome is deterministic and every key
     keeps its (content-determined) value. *)
  let keys i = List.init 40 (fun j -> Printf.sprintf "k%d" (((i * 17) + j) mod 64)) in
  Pool.with_pool ~jobs:4 (fun pool ->
      let stages = List.init 4 (fun _ -> Vcache.stage root) in
      ignore
        (Pool.mapi pool
           ~f:(fun i s -> List.iter (fun k -> Vcache.add s k ("v:" ^ k)) (keys i))
           stages);
      List.iter Vcache.merge stages;
      (* Unstaged root adds from several domains exercise the mutex. *)
      ignore
        (Pool.map pool
           ~f:(fun i ->
             Vcache.add root (Printf.sprintf "r%d" (i mod 8)) "shared")
           (List.init 32 Fun.id)));
  let reopened = Vcache.create ~dir () in
  List.iter
    (fun i ->
      let k = Printf.sprintf "k%d" i in
      Alcotest.(check (option string)) ("merged " ^ k) (Some ("v:" ^ k))
        (Vcache.find reopened k))
    [ 0; 17; 40; 56; 63 ];
  List.iter
    (fun i ->
      let k = Printf.sprintf "r%d" i in
      Alcotest.(check (option string)) ("root-added " ^ k) (Some "shared")
        (Vcache.find reopened k))
    [ 0; 7 ]

(* Self-heal: a poisoned directory recovers on its own — a truncated entry
   file is deleted the first time it reads as a miss, and tmp files left by
   interrupted atomic writes are swept when a store is created over the
   directory. *)
let test_self_heal () =
  let dir = temp_dir () in
  let c = Vcache.create ~dir () in
  Vcache.add c "key" "a-reasonably-long-payload-to-truncate";
  let file, _ = List.hd (Vcache.disk_entries ~dir) in
  let path = Filename.concat dir file in
  let full = In_channel.with_open_bin path In_channel.input_all in
  overwrite path (String.sub full 0 (String.length full - 5));
  Alcotest.(check (option string)) "truncated entry reads as a miss" None
    (Vcache.find (Vcache.create ~dir ()) "key");
  Alcotest.(check bool) "truncated entry file was deleted" false
    (Sys.file_exists path);
  (* Orphan tmp files (interrupted writers) are swept at create time — but
     only once they are older than the safety threshold, so a concurrently
     live writer's in-flight tmp file survives. *)
  let stale0 = Filename.concat dir ".tmp.12345.0" in
  let stale1 = Filename.concat dir ".tmp.12345.1" in
  let fresh = Filename.concat dir ".tmp.12345.2" in
  overwrite stale0 "half-written";
  overwrite stale1 "";
  overwrite fresh "in-flight";
  let old = Unix.gettimeofday () -. 3600.0 in
  Unix.utimes stale0 old old;
  Unix.utimes stale1 old old;
  let c2 = Vcache.create ~dir () in
  Alcotest.(check bool) "stale orphan tmp files swept at create" false
    (Sys.file_exists stale0 || Sys.file_exists stale1);
  Alcotest.(check bool) "fresh tmp file (live writer) survives the sweep" true
    (Sys.file_exists fresh);
  Sys.remove fresh;
  (* The healed directory works normally afterwards. *)
  Vcache.add c2 "key" "replacement";
  Alcotest.(check (option string)) "healed directory stores again"
    (Some "replacement")
    (Vcache.find (Vcache.create ~dir ()) "key")

let test_stats_zero_props () =
  let s = Mc.Checker.Stats.create () in
  Alcotest.(check (float 0.)) "mean_time on 0 props" 0.
    (Mc.Checker.Stats.mean_time s);
  Alcotest.(check (float 0.)) "pct_undetermined on 0 props" 0.
    (Mc.Checker.Stats.pct_undetermined s);
  Alcotest.(check (float 0.)) "hit_rate on 0 props" 0.
    (Mc.Checker.Stats.hit_rate s)

(* Directed Stats.merge edge cases: zero/one-sided merges, all-cache-hit
   stats, and the lookup-based hit_rate denominator (stats merged in from
   an uncached checker must not dilute the rate). *)
let test_stats_merge_edges () =
  let module S = Mc.Checker.Stats in
  let mk ~props ~hits ~misses ~undet ~time =
    let s = S.create () in
    s.S.n_props <- props;
    s.S.n_cache_hits <- hits;
    s.S.n_cache_misses <- misses;
    s.S.n_undetermined <- undet;
    s.S.total_time <- time;
    s
  in
  (* empty + empty: still every-rate-guarded *)
  let e = S.merge (S.create ()) (S.create ()) in
  Alcotest.(check (float 0.)) "empty merge mean_time" 0. (S.mean_time e);
  Alcotest.(check (float 0.)) "empty merge pct_undetermined" 0.
    (S.pct_undetermined e);
  Alcotest.(check (float 0.)) "empty merge hit_rate" 0. (S.hit_rate e);
  (* one-sided merge preserves the populated side exactly *)
  let a = mk ~props:4 ~hits:4 ~misses:0 ~undet:1 ~time:2.0 in
  let one = S.merge a (S.create ()) in
  Alcotest.(check int) "one-sided props" 4 one.S.n_props;
  Alcotest.(check (float 1e-9)) "one-sided mean_time" 0.5 (S.mean_time one);
  Alcotest.(check (float 1e-9)) "one-sided pct_undetermined" 25.
    (S.pct_undetermined one);
  Alcotest.(check (float 0.)) "all-cache-hit shard hit_rate is 1.0" 1.
    (S.hit_rate one);
  (* merging in an uncached shard (props but no lookups) must not dilute
     the rate: 5 hits / 10 lookups = 0.5, regardless of the 20 props *)
  let cached = mk ~props:10 ~hits:5 ~misses:5 ~undet:0 ~time:1.0 in
  let uncached = mk ~props:10 ~hits:0 ~misses:0 ~undet:0 ~time:1.0 in
  let m = S.merge cached uncached in
  Alcotest.(check int) "mixed merge props" 20 m.S.n_props;
  Alcotest.(check (float 1e-9)) "hit_rate over lookups, not props" 0.5
    (S.hit_rate m);
  (* merge and copy return fresh records: mutating an input afterwards
     must not change them *)
  let snap = S.copy a in
  a.S.n_props <- 1000;
  a.S.n_undetermined <- 999;
  Alcotest.(check int) "copy is a snapshot" 4 snap.S.n_props;
  Alcotest.(check int) "merge result is fresh" 4 one.S.n_props

(* End-to-end: uncached vs cold-cached vs warm-cached SynthLC on the Ibex
   core.  All three reports must be bit-identical (the cache is invisible
   in the output), and the warm run must serve >= 90% of its checker calls
   from the store. *)
let run_engine ?cache () =
  let design () = Designs.Ibex.build () in
  let stimulus ~pins ~rotate meta = Designs.Stimulus.ibex ~pins ~rotate meta in
  Synthlc.Engine.run ?cache ~config:Test_parallel.light_config
    ~synth_config:Test_parallel.light_config ~stimulus ~design ~jobs:1
    ~instructions:
      [ Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.ADD; Isa.make ~rd:1 ~rs1:2 ~rs2:3 Isa.DIV ]
    ~transmitters:[ Isa.DIV; Isa.ADD ]
    ~kinds:[ Synthlc.Types.Intrinsic ]
    ~revisit_count_labels:[ "divU" ] ~iuv_pc:Designs.Core.iuv_pc ()

let test_engine_warm_identical () =
  let dir = temp_dir () in
  let uncached = run_engine () in
  let cold = run_engine ~cache:(Vcache.create ~dir ()) () in
  let warm_store = Vcache.create ~dir () in
  let warm = run_engine ~cache:warm_store () in
  Alcotest.(check bool) "cold-cached report equals uncached" true
    (Synthlc.Engine.equal_report uncached cold);
  Alcotest.(check bool) "warm report equals cold" true
    (Synthlc.Engine.equal_report cold warm);
  let dg = Synthlc.Engine.report_digest in
  Alcotest.(check string) "uncached and cold digests equal" (dg uncached) (dg cold);
  Alcotest.(check string) "cold and warm digests equal" (dg cold) (dg warm);
  let hits, misses, _ = Vcache.counters warm_store in
  Alcotest.(check bool) "warm run saw some checker calls" true (hits > 0);
  Alcotest.(check bool) "warm run serves >= 90% from the cache" true
    (float_of_int hits >= 0.9 *. float_of_int (hits + misses));
  Alcotest.(check bool) "synthesis-stage hit rate >= 90%" true
    (Mc.Checker.Stats.hit_rate warm.Synthlc.Engine.checker_totals >= 0.9)

let suite =
  ( "vcache",
    [
      Alcotest.test_case "roundtrip + restart persistence" `Quick
        test_roundtrip_restart;
      Alcotest.test_case "staged views merge into parent" `Quick
        test_staged_merge;
      Alcotest.test_case "netlist digest stable across elaborations" `Quick
        test_netlist_digest_stable;
      Alcotest.test_case "corrupt entries read as misses" `Quick
        test_corruption_is_miss;
      Alcotest.test_case "corrupt entries + orphan tmp self-heal" `Quick
        test_self_heal;
      Alcotest.test_case "concurrent writers under Pool" `Quick
        test_concurrent_writers;
      Alcotest.test_case "stats guards on zero properties" `Quick
        test_stats_zero_props;
      Alcotest.test_case "stats merge edge cases" `Quick test_stats_merge_edges;
      Alcotest.test_case "engine warm run bit-identical (ibex)" `Slow
        test_engine_warm_identical;
    ] )
