(* Observability-layer tests: span recording and nesting, ring-buffer
   overflow accounting, ambient-context attribution, the metrics registry,
   Chrome trace-event / metrics JSON export well-formedness, pool
   integration (nested submission under tracing, derive_seed golden
   stability), and the digest-exclusion rule — engine reports must be
   bit-identical with tracing on vs. off and -j1 vs. -j4. *)

module Engine = Synthlc.Engine

(* Every test starts from a known-clean, enabled layer and leaves the
   layer disabled for whoever runs next (other suites assume the
   zero-cost path). *)
let with_obs ?capacity f =
  Obs.reset ();
  Obs.enable ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* Minimal JSON well-formedness check: balanced {}/[] outside strings,
   legal escapes, no trailing garbage.  Enough to catch the classic
   emitter bugs (unescaped quotes, trailing commas are NOT caught — see
   the structural checks alongside). *)
let json_balanced s =
  let n = String.length s in
  let rec go i depth in_str =
    if i >= n then depth = 0 && not in_str
    else
      let c = s.[i] in
      if in_str then
        if c = '\\' then go (i + 2) depth true
        else go (i + 1) depth (c <> '"')
      else
        match c with
        | '"' -> go (i + 1) depth true
        | '{' | '[' -> go (i + 1) (depth + 1) false
        | '}' | ']' -> depth > 0 && go (i + 1) (depth - 1) false
        | _ -> go (i + 1) depth false
  in
  go 0 0 false

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_spans_and_nesting () =
  with_obs (fun () ->
      let r =
        Obs.with_span "outer"
          ~args:[ ("k", "v") ]
          (fun () ->
            Obs.with_span "inner" (fun () -> ());
            17)
      in
      Alcotest.(check int) "with_span is transparent" 17 r;
      (match Obs.events () with
      | [ inner; outer ] ->
        (* Spans record on completion: inner closes first. *)
        Alcotest.(check string) "inner first" "inner" inner.Obs.ev_name;
        Alcotest.(check string) "outer second" "outer" outer.Obs.ev_name;
        Alcotest.(check bool) "outer contains inner (start)" true
          (outer.Obs.ev_ts_ns <= inner.Obs.ev_ts_ns);
        Alcotest.(check bool) "outer contains inner (end)" true
          (inner.Obs.ev_ts_ns + inner.Obs.ev_dur_ns
          <= outer.Obs.ev_ts_ns + outer.Obs.ev_dur_ns);
        Alcotest.(check (list (pair string string)))
          "explicit args kept"
          [ ("k", "v") ]
          outer.Obs.ev_args
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
      (* A raising body still records its span. *)
      (try Obs.with_span "raises" (fun () -> raise Exit) with Exit -> ());
      Alcotest.(check int) "span recorded on raise" 3
        (List.length (Obs.events ())))

let test_disabled_is_inert () =
  Obs.disable ();
  Obs.reset ();
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  Alcotest.(check int) "with_span still runs f" 5
    (Obs.with_span "x" (fun () -> 5));
  Obs.instant "nothing";
  Obs.Metrics.incr "nothing";
  Obs.Metrics.observe "nothing" 1.0;
  Alcotest.(check int) "no events" 0 (List.length (Obs.events ()));
  Alcotest.(check (list (pair string (float 0.)))) "no metrics" []
    (Obs.Metrics.snapshot ())

let test_ring_overflow () =
  with_obs ~capacity:4 (fun () ->
      for i = 1 to 10 do
        Obs.instant (Printf.sprintf "e%d" i)
      done;
      let names = List.map (fun e -> e.Obs.ev_name) (Obs.events ()) in
      Alcotest.(check (list string)) "newest 4 kept, oldest first"
        [ "e7"; "e8"; "e9"; "e10" ] names;
      Alcotest.(check int) "evictions counted" 6 (Obs.dropped_events ());
      Obs.reset ();
      Alcotest.(check int) "reset clears dropped" 0 (Obs.dropped_events ()))

let test_with_ctx_attribution () =
  with_obs (fun () ->
      Obs.with_ctx
        [ ("task", "3") ]
        (fun () ->
          Obs.with_ctx
            [ ("seed", "99") ]
            (fun () -> Obs.with_span "work" ~args:[ ("own", "arg") ] ignore);
          Obs.instant "after-inner-ctx");
      Obs.instant "outside";
      match Obs.events () with
      | [ work; after; outside ] ->
        Alcotest.(check (list (pair string string)))
          "span sees own args + full ambient stack"
          [ ("own", "arg"); ("task", "3"); ("seed", "99") ]
          work.Obs.ev_args;
        Alcotest.(check (list (pair string string)))
          "inner ctx popped on exit"
          [ ("task", "3") ]
          after.Obs.ev_args;
        Alcotest.(check (list (pair string string)))
          "ctx is scoped" [] outside.Obs.ev_args
      | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

let test_metrics_registry () =
  with_obs (fun () ->
      Obs.Metrics.incr "c";
      Obs.Metrics.incr "c" ~by:4;
      Obs.Metrics.incr "c" ~labels:[ ("k", "v") ];
      Obs.Metrics.gauge "g" 2.5;
      Obs.Metrics.gauge "g" 7.5;
      List.iter (Obs.Metrics.observe "h") [ 1.0; 3.0; 8.0 ];
      let get name =
        match Obs.Metrics.get name with
        | Some v -> v
        | None -> Alcotest.failf "missing series %s" name
      in
      Alcotest.(check (float 0.)) "counter sums" 5.0 (get "c");
      Alcotest.(check (float 0.)) "labeled series is separate" 1.0
        (get "c{k=v}");
      Alcotest.(check (float 0.)) "gauge keeps latest" 7.5 (get "g");
      Alcotest.(check (float 0.)) "hist count" 3.0 (get "h.count");
      Alcotest.(check (float 1e-9)) "hist sum" 12.0 (get "h.sum");
      Alcotest.(check (float 1e-9)) "hist mean" 4.0 (get "h.mean");
      Alcotest.(check (float 0.)) "hist min" 1.0 (get "h.min");
      Alcotest.(check (float 0.)) "hist max" 8.0 (get "h.max");
      Alcotest.(check (option (float 0.))) "absent series" None
        (Obs.Metrics.get "nope");
      let names = List.map fst (Obs.Metrics.snapshot ()) in
      Alcotest.(check (list string)) "snapshot sorted by name"
        (List.sort compare names) names)

let test_chrome_trace_export () =
  with_obs (fun () ->
      Obs.with_span "a" ~args:[ ("quote", "say \"hi\"\n") ] ignore;
      Obs.instant "b";
      let json = Obs.chrome_trace () in
      Alcotest.(check bool) "balanced JSON" true (json_balanced json);
      Alcotest.(check bool) "traceEvents array" true
        (contains ~sub:"\"traceEvents\":[" json);
      Alcotest.(check bool) "complete events" true
        (contains ~sub:"\"ph\":\"X\"" json);
      Alcotest.(check bool) "process metadata" true
        (contains ~sub:"\"process_name\"" json);
      Alcotest.(check bool) "escapes quotes" true
        (contains ~sub:{|say \"hi\"\n|} json);
      Alcotest.(check bool) "dropped counter" true
        (contains ~sub:"\"droppedEvents\":0" json);
      let mjson = Obs.metrics_json () in
      Obs.Metrics.incr "m";
      Alcotest.(check bool) "metrics JSON balanced" true
        (json_balanced (Obs.metrics_json ()));
      Alcotest.(check bool) "empty metrics is an object" true
        (json_balanced mjson && contains ~sub:"{" mjson);
      (* File writers round-trip the same bytes. *)
      let dir = Filename.temp_file "obs_test" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let tf = Filename.concat dir "trace.json" in
      let mf = Filename.concat dir "metrics.json" in
      Obs.write_chrome_trace tf;
      Obs.write_metrics_json mf;
      let slurp p = In_channel.with_open_bin p In_channel.input_all in
      Alcotest.(check string) "trace file" (Obs.chrome_trace ()) (slurp tf);
      Alcotest.(check string) "metrics file" (Obs.metrics_json ()) (slurp mf);
      Sys.remove tf;
      Sys.remove mf;
      Unix.rmdir dir)

(* Golden values pin the mixing function: any change to derive_seed
   silently reshuffles every per-task RNG stream and invalidates cached
   verdict stores, so it must not drift. *)
let test_derive_seed_golden () =
  List.iter
    (fun (base, index, want) ->
      Alcotest.(check int)
        (Printf.sprintf "derive_seed ~base:%d ~index:%d" base index)
        want
        (Pool.derive_seed ~base ~index))
    [
      (0, 0, 1194795085308901794);
      (0, 1, 2978448977677597310);
      (1, 0, 4533199225361417592);
      (1, 1, 2389590166322836292);
      (42, 7, 2874826156451655977);
    ]

let test_pool_nested_under_obs () =
  with_obs (fun () ->
      let ys =
        Pool.with_pool ~jobs:4 (fun p ->
            Pool.map p
              ~f:(fun x ->
                let inner = Pool.map p ~f:(fun y -> x + y) [ 1; 2; 3 ] in
                List.fold_left ( + ) 0 inner)
              [ 10; 20; 30; 40; 50 ])
      in
      Alcotest.(check (list int)) "nested sums under tracing"
        [ 36; 66; 96; 126; 156 ] ys;
      (* Only the outer batch goes through the queue (inner maps run
         inline), so the task counter sees exactly the outer tasks. *)
      Alcotest.(check (option (float 0.))) "pool.tasks counts outer batch"
        (Some 5.0)
        (Obs.Metrics.get "pool.tasks");
      match Obs.Metrics.get "pool.task_run_s.count" with
      | Some c -> Alcotest.(check (float 0.)) "run histogram matches" 5.0 c
      | None -> Alcotest.fail "missing pool.task_run_s histogram")

(* The digest-exclusion rule, end to end: the same engine workload run
   (a) untraced sequentially and (b) traced across 4 domains must agree
   on every semantic fact — equal reports, bit-identical digests — and
   the traced run must actually have produced observability output. *)
let test_engine_digest_invariant_under_tracing () =
  Obs.disable ();
  Obs.reset ();
  let plain = Test_parallel.run_ibex_engine 1 in
  Alcotest.(check (list (pair string (float 0.))))
    "untraced report carries no metrics" [] plain.Engine.metrics;
  let traced =
    with_obs (fun () ->
        let r = Test_parallel.run_ibex_engine 4 in
        Alcotest.(check bool) "spans recorded" true (Obs.events () <> []);
        r)
  in
  Alcotest.(check bool) "reports equal" true (Engine.equal_report plain traced);
  Alcotest.(check string) "digests bit-identical"
    (Engine.report_digest plain)
    (Engine.report_digest traced);
  Alcotest.(check bool) "traced report carries metrics" true
    (traced.Engine.metrics <> []);
  Alcotest.(check bool) "engine.task spans attribute seeds" true
    (List.mem_assoc "engine.elapsed_s" traced.Engine.metrics)

let suite =
  ( "obs",
    [
      Alcotest.test_case "spans and nesting" `Quick test_spans_and_nesting;
      Alcotest.test_case "disabled layer is inert" `Quick test_disabled_is_inert;
      Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
      Alcotest.test_case "with_ctx attribution" `Quick test_with_ctx_attribution;
      Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
      Alcotest.test_case "chrome trace export" `Quick test_chrome_trace_export;
      Alcotest.test_case "derive_seed golden" `Quick test_derive_seed_golden;
      Alcotest.test_case "nested pool under obs" `Quick test_pool_nested_under_obs;
      Alcotest.test_case "engine digest invariant (ibex)" `Slow
        test_engine_digest_invariant_under_tracing;
    ] )
