(* Hdl.Analysis tests: constant folding, dead-cell observability, SCC
   enumeration, comb_cone edge cases, and the abstract µFSM reachability
   that backs µLint's L2xx pass and the synthesis static-prune pre-pass. *)

module N = Hdl.Netlist
module A = Hdl.Analysis

let bv w i = Bitvec.of_int ~width:w i

let test_comb_sccs_all_cycles () =
  let nl = N.create "sccs" in
  (* Cycle 1: a <-> b through a Not. *)
  let a = N.wire nl ~name:"a" 1 in
  let b = N.not_ nl a in
  N.connect_wire nl a b;
  (* Cycle 2: a self-loop. *)
  let s = N.wire nl ~name:"self" 1 in
  N.connect_wire nl s s;
  (* A loop broken by a register is not combinational. *)
  let r = N.reg nl ~name:"r" ~init:(N.Init_value (Bitvec.zero 1)) ~width:1 () in
  N.connect_reg nl r (N.not_ nl r);
  (* Plain acyclic logic. *)
  let i = N.input nl "i" 1 in
  ignore (N.op2 nl N.Xor i r);
  let sccs = N.comb_sccs nl in
  Alcotest.(check int) "two combinational cycles" 2 (List.length sccs);
  Alcotest.(check bool) "a-b cycle found" true
    (List.exists (fun c -> List.mem a c && List.mem b c) sccs);
  Alcotest.(check bool) "self-loop found" true (List.mem [ s ] sccs);
  Alcotest.(check bool) "register loop not reported" true
    (not (List.exists (List.mem r) sccs))

let test_const_values () =
  let nl = N.create "cv" in
  let c2 = N.const nl (bv 4 2) in
  let c3 = N.const nl (bv 4 3) in
  let sum = N.op2 nl N.Add c2 c3 in
  let inp = N.input nl "x" 4 in
  let dyn = N.op2 nl N.Xor inp c2 in
  (* Constant selector folds through the taken branch even though the
     untaken branch is an input. *)
  let sel1 = N.const nl (bv 1 1) in
  let m = N.mux nl ~sel:sel1 ~on_true:c3 ~on_false:inp in
  (* Unknown selector but equal constant branches still folds. *)
  let selx = N.reduce_or nl inp in
  let m2 = N.mux nl ~sel:selx ~on_true:c2 ~on_false:c2 in
  let vals = A.const_values nl in
  Alcotest.(check bool) "add folds" true (vals.(sum) = Some (bv 4 5));
  Alcotest.(check bool) "input is not constant" true (vals.(inp) = None);
  Alcotest.(check bool) "input-derived is not constant" true (vals.(dyn) = None);
  Alcotest.(check bool) "const-sel mux folds" true (vals.(m) = Some (bv 4 3));
  Alcotest.(check bool) "equal-branch mux folds" true (vals.(m2) = Some (bv 4 2));
  let foldable = A.constant_foldable nl in
  Alcotest.(check bool) "sum is foldable" true (List.mem sum foldable);
  Alcotest.(check bool) "mux is foldable" true (List.mem m foldable);
  Alcotest.(check bool) "consts themselves are not reported" true
    (not (List.mem c2 foldable));
  Alcotest.(check bool) "dynamic logic is not reported" true
    (not (List.mem dyn foldable))

let test_dead_cells () =
  let nl = N.create "dead" in
  let i = N.input nl "i" 1 in
  let en_src = N.not_ nl i in
  let nxt = N.not_ nl en_src in
  let r =
    N.reg nl ~enable:en_src ~name:"r" ~init:(N.Init_value (Bitvec.zero 1))
      ~width:1 ()
  in
  N.connect_reg nl r nxt;
  let orphan = N.op2 nl N.And i i in
  let dead = A.dead_cells nl ~roots:[ r ] in
  (* The closure follows both a register's next and its enable. *)
  Alcotest.(check bool) "next cone is live" true (not (List.mem nxt dead));
  Alcotest.(check bool) "enable cone is live" true (not (List.mem en_src dead));
  Alcotest.(check bool) "orphan logic is dead" true (List.mem orphan dead);
  (* With no roots, everything is dead. *)
  let all_dead = A.dead_cells nl ~roots:[] in
  Alcotest.(check int) "no roots: all nodes dead" (N.num_nodes nl)
    (List.length all_dead)

let test_comb_cone_edges () =
  let nl = N.create "cone" in
  let i = N.input nl "i" 1 in
  let en = N.not_ nl i in
  let r =
    N.reg nl ~enable:en ~name:"r" ~init:(N.Init_value (Bitvec.zero 1)) ~width:1 ()
  in
  N.connect_reg nl r (N.not_ nl r);
  (* Empty root list: empty cone. *)
  Alcotest.(check int) "empty roots" 0 (Hashtbl.length (N.comb_cone nl []));
  (* Rooting at the enable expression traverses its combinational fan-in. *)
  let cone_en = N.comb_cone nl [ en ] in
  Alcotest.(check bool) "enable cone reaches the input" true
    (Hashtbl.mem cone_en i);
  (* A register in its own next-state cone terminates the traversal: the
     cone contains the register but nothing behind it. *)
  let nxt = match (N.node nl r).N.kind with
    | N.Reg { next = Some n; _ } -> n
    | _ -> Alcotest.fail "r must be a connected register"
  in
  let cone = N.comb_cone nl [ nxt ] in
  Alcotest.(check bool) "self-loop cone contains the reg" true
    (Hashtbl.mem cone r);
  Alcotest.(check bool) "but not the enable's fan-in" true
    (not (Hashtbl.mem cone i))

(* A 2-bit FSM whose next state is a mux tree over explicit constants —
   the encoding style of the built-in designs.  Only {0,1,2} appear in the
   tree, so the residue state 3 is provably unreachable. *)
let test_fsm_reachable_mux_tree () =
  let nl = N.create "fsm" in
  let st = N.reg nl ~name:"st" ~init:(N.Init_value (bv 2 0)) ~width:2 () in
  let a = N.input nl "a" 1 in
  let b = N.input nl "b" 1 in
  let nxt =
    N.mux nl ~sel:a ~on_true:(N.const nl (bv 2 2))
      ~on_false:
        (N.mux nl ~sel:b ~on_true:(N.const nl (bv 2 1))
           ~on_false:(N.const nl (bv 2 0)))
  in
  N.connect_reg nl st nxt;
  match A.fsm_reachable nl ~vars:[ st ] with
  | None -> Alcotest.fail "expected convergence"
  | Some set ->
    let ints = List.sort_uniq compare (List.map Bitvec.to_int set) in
    Alcotest.(check (list int)) "residue state is unreachable" [ 0; 1; 2 ] ints

let test_fsm_reachable_frozen_enable () =
  let nl = N.create "frozen" in
  let en = N.const nl (bv 1 0) in
  let st = N.reg nl ~enable:en ~name:"st" ~init:(N.Init_value (bv 2 1)) ~width:2 () in
  N.connect_reg nl st (N.op2 nl N.Add st (N.const nl (bv 2 1)));
  match A.fsm_reachable nl ~vars:[ st ] with
  | None -> Alcotest.fail "expected convergence"
  | Some set ->
    Alcotest.(check (list int)) "stuck-at-0 enable keeps the reset value"
      [ 1 ]
      (List.sort_uniq compare (List.map Bitvec.to_int set))

let test_fsm_reachable_symbolic_init () =
  let nl = N.create "symb" in
  let st = N.reg nl ~name:"st" ~init:N.Init_symbolic ~width:2 () in
  N.connect_reg nl st st;
  match A.fsm_reachable nl ~vars:[ st ] with
  | None -> Alcotest.fail "expected convergence"
  | Some set ->
    Alcotest.(check (list int)) "symbolic init contributes every value"
      [ 0; 1; 2; 3 ]
      (List.sort_uniq compare (List.map Bitvec.to_int set))

let test_fsm_reachable_bails () =
  let nl = N.create "bail" in
  (* A var that is not a connected register defeats the analysis. *)
  let w = N.wire nl ~name:"w" 2 in
  N.connect_wire nl w (N.const nl (bv 2 0));
  Alcotest.(check bool) "non-register var bails" true
    (A.fsm_reachable nl ~vars:[ w ] = None);
  Alcotest.(check bool) "empty vars bails" true
    (A.fsm_reachable nl ~vars:[] = None)

let test_fsm_reachable_joint_order () =
  (* hi cycles 0->1->0 (1 bit), lo is stuck at 1 (1 bit): the joint states
     must place the first var in the MSBs — {0b01, 0b11}, not {0b10, 0b11}. *)
  let nl = N.create "joint" in
  let hi = N.reg nl ~name:"hi" ~init:(N.Init_value (bv 1 0)) ~width:1 () in
  N.connect_reg nl hi (N.not_ nl hi);
  let lo = N.reg nl ~name:"lo" ~init:(N.Init_value (bv 1 1)) ~width:1 () in
  N.connect_reg nl lo lo;
  match A.fsm_reachable nl ~vars:[ hi; lo ] with
  | None -> Alcotest.fail "expected convergence"
  | Some set ->
    Alcotest.(check (list int)) "first var occupies the MSBs" [ 1; 3 ]
      (List.sort_uniq compare (List.map Bitvec.to_int set))

let test_fsm_reachable_ibex_ex () =
  let meta = Designs.Ibex.build () in
  let u =
    List.find
      (fun (u : Designs.Meta.ufsm) -> u.Designs.Meta.ufsm_name = "ex")
      meta.Designs.Meta.ufsms
  in
  match A.fsm_reachable meta.Designs.Meta.nl ~vars:u.Designs.Meta.vars with
  | None -> Alcotest.fail "expected convergence on ibex ex"
  | Some set ->
    Alcotest.(check (list int)) "ibex ex reaches exactly its encoded states"
      [ 0; 1; 2; 3; 4 ]
      (List.sort_uniq compare (List.map Bitvec.to_int set))

(* Random DAG netlists: the dead-cell set never intersects any root's
   combinational cone (comb_cone follows a strict subset of the liveness
   closure's edges, so every cone member must be live). *)
let arb_netlist_seed =
  QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let qcheck_dead_vs_cone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"dead cells never appear in a root cone"
       arb_netlist_seed (fun seed ->
         let rng = Random.State.make [| seed |] in
         let nl = N.create "rand" in
         let i0 = N.input nl "i0" 4 in
         let i1 = N.input nl "i1" 4 in
         let r = N.reg nl ~name:"r" ~init:(N.Init_value (bv 4 0)) ~width:4 () in
         let sigs = ref [ i0; i1; r ] in
         let pick () =
           List.nth !sigs (Random.State.int rng (List.length !sigs))
         in
         for _ = 1 to 2 + Random.State.int rng 10 do
           let s =
             match Random.State.int rng 4 with
             | 0 -> N.op2 nl N.Add (pick ()) (pick ())
             | 1 -> N.op2 nl N.Xor (pick ()) (pick ())
             | 2 -> N.not_ nl (pick ())
             | _ ->
               N.mux nl
                 ~sel:(N.reduce_or nl (pick ()))
                 ~on_true:(pick ()) ~on_false:(pick ())
           in
           sigs := s :: !sigs
         done;
         N.connect_reg nl r (List.hd !sigs);
         let roots = N.registers nl in
         let dead = A.dead_cells nl ~roots in
         List.for_all
           (fun root ->
             let cone = N.comb_cone nl [ root ] in
             List.for_all (fun d -> not (Hashtbl.mem cone d)) dead)
           roots))

let test_const_values_sliced () =
  (* An extract whose range lands on the constant parts of a
     partially-constant concat folds, even though the whole word does not:
     word = {inp[3:0], 0xA5, inp[3:0]} and we slice out the middle byte. *)
  let nl = N.create "cvslice" in
  let inp = N.input nl "x" 4 in
  let word = N.concat nl [ inp; N.const nl (bv 8 0xA5); inp ] in
  let mid = N.extract nl ~hi:11 ~lo:4 word in
  let straddle = N.extract nl ~hi:12 ~lo:4 word in
  let nib = N.extract nl ~hi:7 ~lo:4 word in
  (* A second slice routed through Not and a nested Extract: bits [9:6] of
     word[11:2] are word[11:8], the constant's high nibble, inverted. *)
  let inv = N.not_ nl word in
  let mid_inv = N.extract nl ~hi:9 ~lo:6 (N.extract nl ~hi:11 ~lo:2 inv) in
  let vals = A.const_values nl in
  Alcotest.(check bool) "whole concat is not constant" true (vals.(word) = None);
  Alcotest.(check bool) "middle byte folds" true (vals.(mid) = Some (bv 8 0xA5));
  Alcotest.(check bool) "low nibble of middle folds" true
    (vals.(nib) = Some (bv 4 0x5));
  Alcotest.(check bool) "slice touching the input does not fold" true
    (vals.(straddle) = None);
  Alcotest.(check bool) "folds through not and nested extract" true
    (vals.(mid_inv) = Some (bv 4 0x5));
  Alcotest.(check bool) "sliced constant is foldable" true
    (List.mem mid (A.constant_foldable nl))

let suite =
  ( "analysis",
    [
      Alcotest.test_case "comb_sccs finds every cycle" `Quick
        test_comb_sccs_all_cycles;
      Alcotest.test_case "constant folding" `Quick test_const_values;
      Alcotest.test_case "constant folding through slices" `Quick
        test_const_values_sliced;
      Alcotest.test_case "dead cells follow next and enable" `Quick
        test_dead_cells;
      Alcotest.test_case "comb_cone edge cases" `Quick test_comb_cone_edges;
      Alcotest.test_case "fsm_reachable: constant mux tree" `Quick
        test_fsm_reachable_mux_tree;
      Alcotest.test_case "fsm_reachable: frozen enable" `Quick
        test_fsm_reachable_frozen_enable;
      Alcotest.test_case "fsm_reachable: symbolic init" `Quick
        test_fsm_reachable_symbolic_init;
      Alcotest.test_case "fsm_reachable: bail conditions" `Quick
        test_fsm_reachable_bails;
      Alcotest.test_case "fsm_reachable: joint MSB order" `Quick
        test_fsm_reachable_joint_order;
      Alcotest.test_case "fsm_reachable: ibex ex states" `Quick
        test_fsm_reachable_ibex_ex;
      qcheck_dead_vs_cone;
    ] )
