#!/usr/bin/env bash
# Formatting/lint gate for CI (and local use): source hygiene checks that
# need no extra tooling, followed by a full typecheck of every library,
# executable, and test without running anything.
#
#   bash scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# Markdown is excluded: trailing double-spaces are hard line breaks there.
sources() {
  git ls-files '*.ml' '*.mli' '*.sh' '*.yml' 'dune-project' '**/dune'
}

echo "== trailing whitespace =="
if sources | xargs grep -n -E ' +$' -- 2>/dev/null; then
  echo "error: trailing whitespace found (lines above)"
  fail=1
fi

echo "== tab indentation in OCaml/dune sources =="
if git ls-files '*.ml' '*.mli' 'dune-project' '**/dune' | xargs grep -n -P '\t' -- 2>/dev/null; then
  echo "error: tab characters found (this tree indents with spaces)"
  fail=1
fi

echo "== CRLF line endings =="
if sources | xargs grep -l -P '\r$' -- 2>/dev/null; then
  echo "error: CRLF line endings found (files above)"
  fail=1
fi

echo "== dune typecheck (@check) =="
dune build @check || fail=1

# uLint over the built-in designs: exit 2 (errors) fails the gate; exit 1
# (warnings) is reported but tolerated here — CI uploads the JSON artifact.
echo "== uLint (built-in designs) =="
if [ "$fail" -eq 0 ]; then
  set +e
  dune exec bin/synthlc_cli.exe -- lint
  ulint=$?
  set -e
  if [ "$ulint" -ge 2 ]; then
    echo "error: uLint reported errors"
    fail=1
  fi
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
