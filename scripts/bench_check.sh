#!/usr/bin/env bash
# Bench regression gate: compare a freshly generated BENCH_results.json
# against the committed baseline.
#
#   bash scripts/bench_check.sh BASELINE.json FRESH.json
#
# Semantic keys — experiment statuses, report digests, determinism /
# bit-identity booleans, prop and prune counts, fuzz failure counts —
# must match exactly; a mismatch fails the gate (exit 1).  Timing fields
# are compared warn-only: a slowdown prints a warning but never fails,
# since CI runners vary.  Only keys present in BOTH files are compared,
# so the baseline may carry more (or fewer) experiments than the run
# under test without tripping the gate.
set -euo pipefail

baseline="${1:-}"
fresh="${2:-}"
if [ -z "$baseline" ] || [ -z "$fresh" ]; then
  echo "usage: bench_check.sh BASELINE.json FRESH.json" >&2
  exit 2
fi
for f in "$baseline" "$fresh"; do
  if ! jq -e . "$f" >/dev/null 2>&1; then
    echo "bench_check: $f is missing or not valid JSON" >&2
    exit 2
  fi
done

# Project "key<TAB>value" lines of the semantic (must-match) surface.
project_semantic() {
  jq -r '
    def kv($k; $v): select($v != null) | "\($k)\t\($v | tojson)";
    [
      (.experiments[]? | kv("experiment.\(.id).status"; .status)),
      (.experiments[]? | select(.id != "micro")
        | kv("experiment.\(.id).props"; .props)),
      (.parallel? // empty
        | kv("parallel.deterministic"; .deterministic),
          kv("parallel.mupath_props"; .mupath_props),
          kv("parallel.flow_props"; .flow_props)),
      (.cache? // empty
        | kv("cache.bit_identical"; .bit_identical),
          kv("cache.report_digest"; .report_digest),
          kv("cache.checker_calls"; .checker_calls),
          kv("cache.warm_hits"; .warm_hits)),
      (.static_prune? // empty
        | kv("static_prune.digest_identical"; .digest_identical),
          kv("static_prune.report_digest"; .report_digest),
          kv("static_prune.covers_pruned"; .covers_pruned),
          kv("static_prune.duv_props_on"; .duv_props_on),
          kv("static_prune.duv_props_off"; .duv_props_off)),
      (.static_flow? // empty
        | kv("static_flow.digest_identical"; .digest_identical),
          kv("static_flow.report_digest"; .report_digest),
          kv("static_flow.covers_pruned"; .covers_pruned),
          kv("static_flow.flow_props"; .flow_props)),
      (.sat? // empty
        | kv("sat.digest_identical"; .digest_identical),
          kv("sat.report_digest"; .report_digest),
          kv("sat.portfolio_domains"; .portfolio_domains)),
      (.obs? // empty
        | kv("obs.digest_identical"; .digest_identical),
          kv("obs.events"; .events)),
      (.absint? // empty
        | kv("absint.digest_identical"; .digest_identical),
          kv("absint.report_digest"; .report_digest),
          kv("absint.covers_pruned"; .covers_pruned),
          kv("absint.pruned_static"; .pruned_static),
          kv("absint.kb_set_identical"; .kb_set_identical)),
      (.fuzz? // empty
        | kv("fuzz.seed"; .seed),
          kv("fuzz.designs"; .designs),
          kv("fuzz.failures"; .failures),
          kv("fuzz.skipped"; .skipped),
          kv("fuzz.checker_props"; .checker_props),
          kv("fuzz.pruned_static"; .pruned_static),
          kv("fuzz.netlist_digests"; .netlist_digests)),
      (.frontend? // empty
        | kv("frontend.designs"; .designs),
          kv("frontend.roundtrip_identical"; .roundtrip_identical),
          kv("frontend.warnings"; .warnings),
          kv("frontend.netlist_digests"; .netlist_digests),
          kv("frontend.run_identical"; .run_identical),
          kv("frontend.run_digest"; .run_digest)),
      (.sweep? // empty
        | kv("sweep.comb_nodes"; .comb_nodes),
          kv("sweep.merged"; .merged),
          kv("sweep.classes"; .classes),
          kv("sweep.digest_identical"; .digest_identical),
          kv("sweep.report_digest"; .report_digest),
          kv("sweep.sem_hits"; .sem_hits),
          kv("sweep.sem_misses"; .sem_misses),
          kv("sweep.sem_identical"; .sem_identical))
    ] | .[]
  ' "$1"
}

# Project "key<TAB>seconds" timing lines (warn-only surface).
project_timing() {
  jq -r '
    def kv($k; $v): select($v != null) | "\($k)\t\($v)";
    [
      kv("total_time_s"; .total_time_s),
      (.experiments[]? | kv("experiment.\(.id).time_s"; .time_s)),
      (.cache? // empty | kv("cache.t_warm_s"; .t_warm_s)),
      (.sweep? // empty
        | kv("sweep.t_off_s"; .t_off_s),
          kv("sweep.t_on_s"; .t_on_s)),
      (.fuzz? // empty | kv("fuzz.t_total_s"; .t_total_s)),
      (.frontend? // empty
        | kv("frontend.t_export_s"; .t_export_s),
          kv("frontend.t_import_s"; .t_import_s),
          kv("frontend.t_run_s"; .t_run_s))
    ] | .[]
  ' "$1"
}

fail=0
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

project_semantic "$baseline" | sort >"$tmp/base.sem"
project_semantic "$fresh" | sort >"$tmp/fresh.sem"

echo "== bench_check: semantic comparison =="
compared=0
while IFS=$'\t' read -r key bval; do
  fval="$(awk -F'\t' -v k="$key" '$1 == k { print $2 }' "$tmp/fresh.sem")"
  [ -z "$fval" ] && continue  # key absent in fresh run: not compared
  compared=$((compared + 1))
  if [ "$bval" != "$fval" ]; then
    echo "MISMATCH  $key: baseline=$bval fresh=$fval"
    fail=1
  fi
done <"$tmp/base.sem"
echo "compared $compared semantic key(s)"
if [ "$compared" -eq 0 ]; then
  echo "bench_check: no overlapping semantic keys — wrong experiment set?" >&2
  fail=1
fi

echo "== bench_check: timing comparison (warn-only) =="
project_timing "$baseline" | sort >"$tmp/base.t"
project_timing "$fresh" | sort >"$tmp/fresh.t"
while IFS=$'\t' read -r key bval; do
  fval="$(awk -F'\t' -v k="$key" '$1 == k { print $2 }' "$tmp/fresh.t")"
  [ -z "$fval" ] && continue
  awk -v b="$bval" -v f="$fval" -v k="$key" 'BEGIN {
    if (b > 0.5 && f > b * 1.5)
      printf "warning: %s slowed down: baseline=%.3fs fresh=%.3fs (%.2fx)\n", k, b, f, f / b
  }'
done <"$tmp/base.t"

if [ "$fail" -ne 0 ]; then
  echo "bench_check: FAILED (semantic drift against the committed baseline)"
  exit 1
fi
echo "bench_check: OK"
